//! The paper's measurement methodology (§6.1) as a harness.
//!
//! "A source host generated IP/UDP packets at a variety of rates, and sent
//! them via the router to a destination address. ... In all the trials
//! reported on here, the packet generator sent 10000 UDP packets carrying 4
//! bytes of data. ... We calculated the delivered packet rate by using the
//! 'netstat' program to sample the output interface count ('Opkts') before
//! and after each trial."
//!
//! [`run_trial`] reproduces one such trial: generate a jittered
//! constant-rate schedule, pace it to Ethernet feasibility, inject the
//! frames on interface 0, run the simulated router, and report rates
//! averaged over the steady-state measurement window. [`sweep`] runs a
//! trial per input rate, producing the `(input rate, output rate)` series
//! every figure in the paper plots.

use std::rc::Rc;

use livelock_core::analysis::SweepPoint;
use livelock_machine::chrome_trace_json_with_markers;
use livelock_machine::cluster::{Cluster, DEFAULT_SLICE};
use livelock_machine::cpu::{CpuId, Engine};
use livelock_machine::fold::CycleFold;
use livelock_machine::ledger::CpuClass;
use livelock_machine::nic::rss_queue;
use livelock_machine::trace::TraceRecord;
use livelock_machine::wire::Wire;
use livelock_net::gen::{PacketFactory, TrafficGen};
use livelock_net::ipv4::proto;
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_net::pool::{FramePool, PoolStats};
use livelock_sim::{Cycles, Nanos};

use livelock_net::classify::{Classifier, TrafficClass};
use livelock_net::FlowKey;
use livelock_sim::Freq;

use crate::config::KernelConfig;
use crate::flows::{FlowRegistry, FlowStats};
use crate::par::Parallelism;
use crate::router::smp::{SmpCtx, SmpShared};
use crate::router::{Event, RouterKernel};
use crate::stats::{ClassStats, DropStats, FaultStats, LatencyStats};
use crate::telemetry::{ObsEvent, Timeline};

/// One trial's parameters.
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Nominal offered rate in packets/second.
    pub rate_pps: f64,
    /// Packets to generate (the paper used 10000).
    pub n_packets: usize,
    /// RNG seed for arrival jitter.
    pub seed: u64,
    /// Fraction of the trial treated as warm-up and excluded from the
    /// measurement window.
    pub warmup_frac: f64,
    /// UDP source ports to cycle packets through, making each port one
    /// flow for per-flow accounting and RSS steering. `None` keeps the
    /// historical default: the factory's single fixed port on one CPU, a
    /// deterministic 64-flow balanced set on SMP — so existing specs are
    /// bit-identical.
    pub flows: Option<Vec<u16>>,
    /// The kernel under test.
    pub config: KernelConfig,
}

impl TrialSpec {
    /// A paper-like trial: 10000 packets, 10% warm-up, seed 1.
    pub fn new(config: KernelConfig) -> Self {
        TrialSpec {
            rate_pps: 1000.0,
            n_packets: 10_000,
            seed: 1,
            warmup_frac: 0.1,
            flows: None,
            config,
        }
    }
}

/// One CPU's share of a trial: the per-CPU slice of what used to be four
/// machine-global scalars on [`TrialResult`], plus the work-stealing
/// counters that only exist per CPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuStats {
    /// Which CPU these numbers describe ([`CpuStats::AGGREGATE`] for the
    /// synthetic cross-CPU roll-up returned by [`TrialResult::aggregate`]).
    pub cpu: CpuId,
    /// Fraction of this CPU's window cycles per [`CpuClass`], indexed by
    /// [`CpuClass::index`] in [`CpuClass::ALL`] order. The machine's
    /// conserved cycle ledger restricted to the measurement window: the
    /// nine entries sum to 1 on every CPU.
    pub cpu_share: [f64; CpuClass::COUNT],
    /// Fraction of this CPU's window cycles the compute-bound user
    /// process got (0 when no user process was configured).
    pub user_cpu_frac: f64,
    /// Hardware interrupts this CPU took over the whole trial.
    pub interrupts_taken: u64,
    /// Events this CPU's engine dispatched over the whole trial
    /// (arrivals, wire completions, clock pulses, deferred interrupts,
    /// IPIs, faults).
    pub events_dispatched: u64,
    /// Frames this CPU parked in its steal buffer when its own receive
    /// ring overflowed (0 unless stealing is enabled).
    pub steals_published: u64,
    /// Frames this CPU pulled from siblings' steal buffers while
    /// otherwise idle (0 unless stealing is enabled).
    pub steals_taken: u64,
}

impl CpuStats {
    /// The sentinel [`CpuId`] carried by [`TrialResult::aggregate`]'s
    /// cross-CPU roll-up (it describes no single CPU).
    pub const AGGREGATE: CpuId = CpuId(usize::MAX);
}

/// One traffic class's trial summary — the class dimension of the
/// stats API, next to the CPU dimension ([`CpuStats`]) and the flow
/// dimension ([`FlowStats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ClassSummary {
    /// Which class these numbers describe.
    pub class: TrafficClass,
    /// Wire arrivals classified into this class (whole trial).
    pub arrived: u64,
    /// Packets of this class delivered (whole trial).
    pub delivered: u64,
    /// Packets of this class shed by the admission gate (whole trial).
    pub shed: u64,
    /// Delivered rate inside the measurement window, pkts/s.
    pub delivered_pps: f64,
    /// Mean wire-to-delivery sojourn of this class's delivered packets.
    pub latency_mean: Nanos,
    /// 99th-percentile sojourn (bucketed upper bound) — the number the
    /// `Control` SLO constrains.
    pub latency_p99: Nanos,
}

/// Renders the kernel's per-class books as [`ClassSummary`] rows in
/// [`TrafficClass`] index order; empty when classification was off.
fn class_summaries(class: Option<&ClassStats>, freq: Freq) -> Vec<ClassSummary> {
    let Some(cs) = class else {
        return Vec::new();
    };
    TrafficClass::ALL
        .into_iter()
        .map(|c| {
            let cc = cs.get(c);
            ClassSummary {
                class: c,
                arrived: cc.arrived,
                delivered: cc.delivered,
                shed: cc.shed,
                delivered_pps: cs.delivered_pps(c, freq),
                latency_mean: cc.latency.mean(),
                latency_p99: cc.latency.quantile(0.99),
            }
        })
        .collect()
}

/// What one trial measured.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialResult {
    /// Offered rate actually achieved inside the window (pkts/s).
    pub offered_pps: f64,
    /// Delivered (transmitted) rate inside the window (pkts/s).
    pub delivered_pps: f64,
    /// Total frames transmitted over the whole trial.
    pub transmitted: u64,
    /// Frames dropped at the receive ring (free drops).
    pub rx_ring_drops: u64,
    /// Packets dropped at `ipintrq`.
    pub ipintrq_drops: u64,
    /// Packets dropped at the screend queue.
    pub screend_q_drops: u64,
    /// Packets denied (consumed) by the screening rules.
    pub screend_denied: u64,
    /// Packets dropped at the local socket buffer (end-system mode).
    pub socket_q_drops: u64,
    /// Packets consumed by the local application over the whole trial.
    pub app_delivered: u64,
    /// Local application goodput inside the window (pkts/s).
    pub app_delivered_pps: f64,
    /// Packets dropped at output interface queues.
    pub ifq_drops: u64,
    /// Mean forwarding latency of delivered packets.
    pub latency_mean: Nanos,
    /// 99th-percentile forwarding latency (bucketed upper bound).
    pub latency_p99: Nanos,
    /// Standard deviation of forwarding latency — the jitter the paper's
    /// §3 requires scheduling to keep low.
    pub latency_jitter: Nanos,
    /// Full latency distributions: total sojourn plus per-stage residency
    /// histograms (empty when `config.latency_tracking` is off).
    pub latency: LatencyStats,
    /// Every drop in the trial, attributed to a
    /// [`DropReason`](crate::stats::DropReason).
    pub drops: DropStats,
    /// Per-CPU execution statistics, one entry per configured CPU in
    /// [`CpuId`] order (always at least one). The CPU-dimension API:
    /// read through [`TrialResult::per_cpu`] and
    /// [`TrialResult::aggregate`].
    pub per_cpu: Vec<CpuStats>,
    /// The telemetry timeline, when the spec's
    /// [`KernelConfig::telemetry`](crate::config::KernelConfig::telemetry)
    /// enabled the periodic sampler (`None` otherwise).
    pub timeline: Option<Timeline>,
    /// Frame-pool counters at trial end: every packet buffer in the trial
    /// came from one [`FramePool`], so `pool.misses` is the number of
    /// per-packet heap allocations (0 in steady state).
    pub pool: PoolStats,
    /// Fault-injection and recovery counters (all zero when the config
    /// carries no fault plan).
    pub fault: FaultStats,
    /// The per-flow registry (merged across CPUs on SMP), when the
    /// spec's [`KernelConfig::observe`](crate::config::KernelConfig::observe)
    /// enabled the observability layer (`None` otherwise).
    pub flows: Option<FlowRegistry>,
    /// The livelock detector's typed event stream, ordered by
    /// `(cycle, cpu)` — empty unless observability was enabled.
    pub events: Vec<ObsEvent>,
    /// The machine's `(cpu, class, chunk-tag)` cycle fold for flamegraph
    /// export (merged across CPUs on SMP) — `None` unless observability
    /// was enabled.
    pub fold: Option<CycleFold>,
    /// Per-traffic-class statistics in [`TrafficClass`] index order
    /// (merged across CPUs on SMP) when the spec's
    /// [`KernelConfig::classes`](crate::config::KernelConfig::classes)
    /// enabled classification — empty otherwise. The class-dimension
    /// API: read through [`TrialResult::per_class`].
    pub classes: Vec<ClassSummary>,
}

impl TrialResult {
    /// This trial as a sweep point.
    pub fn point(&self) -> SweepPoint {
        SweepPoint::new(self.offered_pps, self.delivered_pps)
    }

    /// Per-flow statistics sorted by flow key, completing the
    /// stats-dimension API next to [`TrialResult::per_cpu`] and
    /// [`TrialResult::aggregate`]. Empty when observability was off.
    pub fn per_flow(&self) -> Vec<&FlowStats> {
        match &self.flows {
            Some(reg) => reg.per_flow(),
            None => Vec::new(),
        }
    }

    /// Per-CPU execution statistics in [`CpuId`] order (one entry on a
    /// single-CPU trial).
    pub fn per_cpu(&self) -> &[CpuStats] {
        &self.per_cpu
    }

    /// Per-class statistics in [`TrafficClass`] index order, completing
    /// the stats-dimension API next to [`TrialResult::per_cpu`] and
    /// [`TrialResult::per_flow`]. Empty when classification was off.
    pub fn per_class(&self) -> &[ClassSummary] {
        &self.classes
    }

    /// The cross-CPU roll-up: CPU shares and user fraction averaged over
    /// CPUs (each CPU's shares sum to 1, so the mean does too), counters
    /// summed, tagged with [`CpuStats::AGGREGATE`]. On a single-CPU trial
    /// this is that CPU's stats under the sentinel id.
    pub fn aggregate(&self) -> CpuStats {
        let n = self.per_cpu.len().max(1) as f64;
        let mut agg = CpuStats {
            cpu: CpuStats::AGGREGATE,
            cpu_share: [0.0; CpuClass::COUNT],
            user_cpu_frac: 0.0,
            interrupts_taken: 0,
            events_dispatched: 0,
            steals_published: 0,
            steals_taken: 0,
        };
        for c in &self.per_cpu {
            for (a, s) in agg.cpu_share.iter_mut().zip(c.cpu_share) {
                *a += s / n;
            }
            agg.user_cpu_frac += c.user_cpu_frac / n;
            agg.interrupts_taken += c.interrupts_taken;
            agg.events_dispatched += c.events_dispatched;
            agg.steals_published += c.steals_published;
            agg.steals_taken += c.steals_taken;
        }
        agg
    }

    /// Mean user-process CPU fraction across CPUs.
    #[deprecated(note = "use per_cpu() / aggregate().user_cpu_frac")]
    pub fn user_cpu_frac(&self) -> f64 {
        self.aggregate().user_cpu_frac
    }

    /// Mean per-class CPU shares across CPUs.
    #[deprecated(note = "use per_cpu() / aggregate().cpu_share")]
    pub fn cpu_share(&self) -> [f64; CpuClass::COUNT] {
        self.aggregate().cpu_share
    }

    /// Total hardware interrupts taken across CPUs.
    #[deprecated(note = "use per_cpu() / aggregate().interrupts_taken")]
    pub fn interrupts_taken(&self) -> u64 {
        self.aggregate().interrupts_taken
    }

    /// Total engine events dispatched across CPUs.
    #[deprecated(note = "use per_cpu() / aggregate().events_dispatched")]
    pub fn events_dispatched(&self) -> u64 {
        self.aggregate().events_dispatched
    }
}

/// Runs one trial.
///
/// With `config.topology.ncpus == 1` (the default) this is the original
/// single-CPU engine, bit-identical to every release before SMP existed.
/// With more CPUs it builds one kernel per CPU, steers the generated
/// flows across per-CPU NIC queues by RSS hash, and advances the kernels
/// under the deterministic cluster interleaver.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero packets or non-positive rate),
/// or — on an SMP fault-free trial — if NIC-boundary packet conservation
/// fails.
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    if spec.config.topology.ncpus > 1 {
        let flows = match &spec.flows {
            Some(f) => f.clone(),
            None => balanced_flows(),
        };
        return run_smp_trial(spec, &flows);
    }
    run_trial_engine(spec, None, Cycles::ZERO).0
}

/// Runs one trial with machine-level scheduling-event tracing enabled
/// (ring of `trace_capacity` records), returning the result plus the
/// trace rendered as Chrome-trace / Perfetto JSON (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). Tracing perturbs
/// nothing: the measured numbers are identical to [`run_trial`]'s.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero packets or non-positive rate).
pub fn run_trial_traced(spec: &TrialSpec, trace_capacity: usize) -> (TrialResult, String) {
    let (result, json, _) = run_trial_engine(spec, Some(trace_capacity), Cycles::ZERO);
    // Tracing was requested above, so `json` is always `Some`; an empty
    // string (never produced in practice) would only mean an empty trace.
    (result, json.unwrap_or_default())
}

/// The trial engine behind [`run_trial`] and [`run_chaos_trial`]:
/// optionally traces, and optionally keeps simulating for `drain` cycles
/// past the measurement window (measured numbers are unaffected — the
/// window is closed first — but queues get a chance to empty, which the
/// chaos invariants assert on). Returns the finished engine for
/// end-state inspection.
fn run_trial_engine(
    spec: &TrialSpec,
    trace_capacity: Option<usize>,
    drain: Cycles,
) -> (TrialResult, Option<String>, Engine<RouterKernel>) {
    assert!(spec.n_packets > 0, "trial needs packets");
    assert!(spec.rate_pps > 0.0, "trial needs a positive rate");
    assert!(
        spec.flows.as_ref().map_or(true, |f| !f.is_empty()),
        "trial needs at least one flow"
    );

    let cfg = spec.config.clone();
    let freq = cfg.cost.freq;
    let ctx_switch = cfg.cost.ctx_switch;
    // One frame pool serves the whole trial: the full arrival schedule is
    // materialized up front, so preallocating one buffer per packet (plus
    // headroom for kernel-originated replies) guarantees zero per-packet
    // heap allocations for the rest of the run.
    let pool = FramePool::new(POOL_BUF_CAPACITY, spec.n_packets + POOL_HEADROOM);
    let (st, kernel) = RouterKernel::build_with_pool(cfg, pool.clone());
    let mut engine = Engine::new(st, kernel, ctx_switch);
    if let Some(cap) = trace_capacity {
        engine.enable_trace(cap);
    }

    // Generate, pace and inject the arrival schedule.
    let mut gen = TrafficGen::paper_default(spec.rate_pps, freq, spec.seed);
    let mut times = gen.arrival_times(Cycles::ZERO, spec.n_packets);
    Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
    let mut factory = PacketFactory::paper_testbed().with_pool(pool.clone());
    for (i, &t) in times.iter().enumerate() {
        if let Some(fl) = &spec.flows {
            factory.src_port = fl[i % fl.len()];
        }
        let pkt = factory.next_packet();
        engine.state_schedule(t, Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
    }

    // Measurement window: after warm-up, until the last arrival. The
    // schedule is nonempty (`n_packets > 0` was asserted above), so the
    // fallbacks never fire.
    let first = times.first().copied().unwrap_or(Cycles::ZERO);
    let last = times.last().copied().unwrap_or(Cycles::ZERO);
    let span = last - first;
    let window_start = first + Cycles::new((span.raw() as f64 * spec.warmup_frac) as u64);
    let window_end = last;
    engine
        .workload_mut()
        .stats_mut()
        .set_window(window_start, window_end);

    // User CPU share — and the per-class cycle-ledger decomposition — are
    // measured over the same window.
    let user_tid = engine.workload().user_tid();
    engine.run_until(window_start);
    let user_before = user_tid.map(|t| engine.state().thread_cycles(t));
    let ledger_before = engine.state().ledger();
    engine.run_until(window_end);
    let user_after = user_tid.map(|t| engine.state().thread_cycles(t));
    let ledger_after = engine.state().ledger();
    if !drain.is_zero() {
        engine.run_until(Cycles::new(window_end.raw().saturating_add(drain.raw())));
    }

    let window = window_end - window_start;
    let user_cpu_frac = match (user_before, user_after) {
        (Some(b), Some(a)) if !window.is_zero() => (a - b).fraction_of(window),
        _ => 0.0,
    };
    let cpu_share = ledger_after.since(&ledger_before).shares();

    let interrupts_taken = engine.state().intr.total_taken();
    engine.workload_mut().sync_pool_stats();
    // Observability export: drain the detector's event stream (it also
    // feeds the chrome-trace markers), give a too-short timeline its
    // drain-time sample, and snapshot the cycle fold.
    let end_now = engine.state().now();
    let end_ledger = engine.state().ledger();
    engine
        .workload_mut()
        .finalize_timeline(end_now, end_ledger, interrupts_taken);
    let obs_events = engine.workload_mut().take_obs_events();
    let fold = engine.state().fold().cloned();
    let mut markers = engine.workload_mut().take_fault_markers();
    markers.extend(
        obs_events
            .iter()
            .map(|ev| (ev.at, format!("{} (cpu{})", ev.kind.label(), ev.cpu.0))),
    );
    markers.sort_by_key(|&(at, _)| at.raw());
    let chrome_json = engine.trace().map(|t| {
        let records: Vec<TraceRecord> = t.records().copied().collect();
        let st = engine.state();
        chrome_trace_json_with_markers(
            &records,
            freq,
            |src| format!("{} #{}", st.intr.name_of(src), src.0),
            |tid| st.sched.name(tid).to_string(),
            &markers,
        )
    });
    let stats = engine.workload().stats();
    let result = TrialResult {
        offered_pps: stats.offered_pps(freq),
        delivered_pps: stats.delivered_pps(freq),
        transmitted: stats.transmitted,
        rx_ring_drops: stats.rx_ring_drops(),
        ipintrq_drops: stats.ipintrq_drops(),
        screend_q_drops: stats.screend_q_drops(),
        screend_denied: stats.screend_denied(),
        socket_q_drops: stats.socket_q_drops(),
        app_delivered: stats.app_delivered,
        app_delivered_pps: stats.app_delivered_pps(freq),
        ifq_drops: stats.ifq_drops(),
        latency_mean: stats.latency.mean(),
        latency_p99: stats.latency.quantile(0.99),
        latency_jitter: stats.latency.jitter(),
        latency: stats.latency.clone(),
        drops: stats.drops.clone(),
        per_cpu: vec![CpuStats {
            cpu: CpuId(0),
            cpu_share,
            user_cpu_frac,
            interrupts_taken,
            events_dispatched: engine.state().events_dispatched(),
            steals_published: 0,
            steals_taken: 0,
        }],
        timeline: stats.timeline.clone(),
        pool: stats.pool.unwrap_or_default(),
        fault: stats.fault,
        flows: stats.flows.clone(),
        events: obs_events,
        fold,
        classes: class_summaries(stats.class.as_ref(), freq),
    };
    (result, chrome_json, engine)
}

/// 64 UDP flows (source ports) whose RSS hashes fill the 4 possible RX
/// queues with exactly 16 flows each, listed bucket-interleaved so that
/// cycling through them in order also balances 2-queue (4 | 64 and the
/// 4-bucket balance implies the 2-bucket one: `hash % 2 == (hash % 4) % 2`)
/// and 1-queue steering. Found by deterministic search from the testbed
/// factory's base port, so the flow set never changes across runs.
fn balanced_flows() -> Vec<u16> {
    const PER_BUCKET: usize = 16;
    let f = PacketFactory::paper_testbed();
    let (src, dst) = (u32::from(f.src_ip), u32::from(f.dst_ip));
    let mut buckets: Vec<Vec<u16>> = vec![Vec::new(); 4];
    let mut port = f.src_port;
    while buckets.iter().any(|b| b.len() < PER_BUCKET) {
        let q = rss_queue(src, dst, proto::UDP, port, f.dst_port, 4);
        if buckets[q].len() < PER_BUCKET {
            buckets[q].push(port);
        }
        port = port.wrapping_add(1);
    }
    let mut out = Vec::with_capacity(4 * PER_BUCKET);
    for i in 0..PER_BUCKET {
        for b in &buckets {
            out.push(b[i]);
        }
    }
    out
}

/// The SMP trial harness behind [`run_trial`]: one complete kernel per
/// CPU, a multiqueue NIC model (packet `i` carries flow `flows[i % len]`,
/// RSS-hashed to an RX queue, each queue paced by its own wire and
/// interrupting its own CPU), all engines advanced by the deterministic
/// cluster interleaver with coalesced IPIs delivered at slice boundaries.
///
/// `flows` is a parameter so tests can steer deliberately *imbalanced*
/// traffic (e.g. every flow to CPU 0) at a stealing-enabled cluster.
fn run_smp_trial(spec: &TrialSpec, flows: &[u16]) -> TrialResult {
    assert!(spec.n_packets > 0, "trial needs packets");
    assert!(spec.rate_pps > 0.0, "trial needs a positive rate");
    assert!(!flows.is_empty(), "trial needs at least one flow");

    let cfg = spec.config.clone();
    let ncpus = cfg.topology.ncpus;
    let freq = cfg.cost.freq;
    let ctx_switch = cfg.cost.ctx_switch;
    let pool = FramePool::new(
        POOL_BUF_CAPACITY,
        spec.n_packets + POOL_HEADROOM * ncpus,
    );
    let shared = SmpShared::new(ncpus, cfg.ipintrq_cap);

    // One aggregate arrival schedule at the nominal rate, split across RX
    // queues by each packet's RSS hash, then paced per queue: every queue
    // is fed by its own wire, so aggregate offered load can exceed a
    // single wire's 14,880 pkts/s ceiling.
    let mut gen = TrafficGen::paper_default(spec.rate_pps, freq, spec.seed);
    let times = gen.arrival_times(Cycles::ZERO, spec.n_packets);
    let mut factory = PacketFactory::paper_testbed().with_pool(pool.clone());
    let (src, dst) = (u32::from(factory.src_ip), u32::from(factory.dst_ip));
    // Class-aware steering: when classification is configured, frames
    // are steered by traffic class (`class.index() % ncpus`) instead of
    // RSS hash, so each priority lands on a dedicated CPU's queue and
    // strict-priority service survives the multiqueue split. The
    // classifier here is the same deterministic rule engine every
    // kernel runs at admission, so steering and per-class accounting
    // always agree.
    let steer_classifier = cfg
        .classes
        .as_ref()
        .map(|c| Classifier::new(c.rules.clone(), c.default_class));
    let mut queue_times: Vec<Vec<Cycles>> = vec![Vec::new(); ncpus];
    let mut queue_ports: Vec<Vec<u16>> = vec![Vec::new(); ncpus];
    for (i, &t) in times.iter().enumerate() {
        let port = flows[i % flows.len()];
        let q = match &steer_classifier {
            Some(cl) => {
                let key = FlowKey {
                    src_ip: src,
                    dst_ip: dst,
                    proto: proto::UDP,
                    src_port: port,
                    dst_port: factory.dst_port,
                };
                cl.classify(&key).index() % ncpus
            }
            None => rss_queue(src, dst, proto::UDP, port, factory.dst_port, ncpus),
        };
        queue_times[q].push(t);
        queue_ports[q].push(port);
    }
    for q in &mut queue_times {
        Wire::ethernet_10m(freq).pace(q, MIN_FRAME_LEN);
    }

    // Measurement window over the aggregate (post-pacing) schedule.
    let first = queue_times
        .iter()
        .filter_map(|v| v.first())
        .copied()
        .min()
        .unwrap_or(Cycles::ZERO);
    let last = queue_times
        .iter()
        .filter_map(|v| v.last())
        .copied()
        .max()
        .unwrap_or(Cycles::ZERO);
    let span = last - first;
    let window_start = first + Cycles::new((span.raw() as f64 * spec.warmup_frac) as u64);
    let window_end = last;

    let mut engines = Vec::with_capacity(ncpus);
    for k in 0..ncpus {
        let mut c = cfg.clone();
        // A fault plan targets one CPU; siblings run clean.
        if let Some(plan) = &c.faults {
            if plan.target() != CpuId(k) {
                c.faults = None;
            }
        }
        let (mut st, mut kernel) = RouterKernel::build_with_pool(c, pool.clone());
        st.set_cpu(CpuId(k));
        kernel.attach_smp(
            &mut st,
            SmpCtx {
                cpu: CpuId(k),
                ncpus,
                steal: cfg.topology.steal,
                shared: Rc::clone(&shared),
            },
        );
        if let Some(tl) = &mut kernel.stats_mut().timeline {
            tl.set_cpu(CpuId(k));
        }
        kernel.set_observe_cpu(CpuId(k));
        kernel.stats_mut().set_window(window_start, window_end);
        let mut engine = Engine::new(st, kernel, ctx_switch);
        for (j, &t) in queue_times[k].iter().enumerate() {
            factory.src_port = queue_ports[k][j];
            let pkt = factory.next_packet();
            engine.state_schedule(t, Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
        }
        engines.push(engine);
    }

    // The interleaver's slice hook is the sole cross-CPU signal path:
    // drain a CPU's coalesced IPI flag into one Event::Ipi per slice.
    let mut cluster = Cluster::new(engines, DEFAULT_SLICE);
    let hook_shared = Rc::clone(&shared);
    let mut hook = move |cpu: CpuId, engine: &mut Engine<RouterKernel>| {
        let mut sh = hook_shared.borrow_mut();
        if sh.ipi_pending[cpu.0] {
            sh.ipi_pending[cpu.0] = false;
            drop(sh);
            engine.state_schedule(engine.now(), Event::Ipi);
        }
    };

    cluster.run_until(window_start, &mut hook);
    let user_tids: Vec<_> = cluster
        .engines()
        .iter()
        .map(|e| e.workload().user_tid())
        .collect();
    let user_before: Vec<_> = cluster
        .engines()
        .iter()
        .zip(&user_tids)
        .map(|(e, t)| t.map(|t| e.state().thread_cycles(t)))
        .collect();
    let ledgers_before: Vec<_> = cluster.engines().iter().map(|e| e.state().ledger()).collect();
    cluster.run_until(window_end, &mut hook);
    let user_after: Vec<_> = cluster
        .engines()
        .iter()
        .zip(&user_tids)
        .map(|(e, t)| t.map(|t| e.state().thread_cycles(t)))
        .collect();
    let ledgers_after: Vec<_> = cluster.engines().iter().map(|e| e.state().ledger()).collect();
    // One extra slice past the window so the final arrivals (scheduled at
    // exactly `window_end`) and any trailing IPIs are processed before
    // the conservation audit; the measurement windows are already closed.
    cluster.run_until(window_end + DEFAULT_SLICE, &mut hook);

    let mut engines = cluster.into_engines();
    engines[0].workload_mut().sync_pool_stats();

    // Observability roll-up: per-CPU event streams interleaved by
    // (cycle, cpu), per-CPU registries and folds merged — both merges are
    // order-independent, so the result is the same no matter which CPU
    // finished first.
    let mut obs_events: Vec<ObsEvent> = Vec::new();
    let mut fold: Option<CycleFold> = None;
    let mut flow_reg: Option<FlowRegistry> = None;
    for e in engines.iter_mut() {
        let now = e.state().now();
        let ledger = e.state().ledger();
        let taken = e.state().intr.total_taken();
        e.workload_mut().finalize_timeline(now, ledger, taken);
        obs_events.extend(e.workload_mut().take_obs_events());
        if let Some(f) = e.state().fold() {
            match &mut fold {
                Some(acc) => acc.merge(f),
                None => fold = Some(f.clone()),
            }
        }
        if let Some(r) = &e.workload().stats().flows {
            match &mut flow_reg {
                Some(acc) => acc.merge(r),
                None => flow_reg = Some(r.clone()),
            }
        }
    }
    obs_events.sort_by_key(|ev| (ev.at.raw(), ev.cpu.0));

    let window = window_end - window_start;
    let sh = shared.borrow();
    let mut per_cpu = Vec::with_capacity(ncpus);
    for (k, e) in engines.iter().enumerate() {
        let user_cpu_frac = match (user_before[k], user_after[k]) {
            (Some(b), Some(a)) if !window.is_zero() => (a - b).fraction_of(window),
            _ => 0.0,
        };
        per_cpu.push(CpuStats {
            cpu: CpuId(k),
            cpu_share: ledgers_after[k].since(&ledgers_before[k]).shares(),
            user_cpu_frac,
            interrupts_taken: e.state().intr.total_taken(),
            events_dispatched: e.state().events_dispatched(),
            steals_published: sh.steals_published[k],
            steals_taken: sh.steals_taken[k],
        });
    }

    // NIC-boundary conservation: every generated packet was DMA'd into
    // some CPU's ring (`Ipkts`), dropped at some CPU's ring, or is still
    // parked in a steal buffer. Fault plans (link flaps lose frames on
    // the wire, storms synthesize extras) change the population, so the
    // audit only runs clean.
    if spec.config.faults.is_none() {
        // Class-shed frames are dropped at admission, before the ring —
        // they never become Ipkts, so they count separately.
        let accounted: u64 = engines
            .iter()
            .map(|e| {
                let s = e.workload().stats();
                e.workload().ipkts(0) + s.rx_ring_drops() + s.class_shed_drops()
            })
            .sum::<u64>()
            + sh.steal_residual() as u64;
        assert_eq!(
            accounted, spec.n_packets as u64,
            "SMP NIC-boundary packet conservation violated"
        );
    }

    let mut offered_pps = 0.0;
    let mut delivered_pps = 0.0;
    let mut app_delivered_pps = 0.0;
    let mut transmitted = 0;
    let mut rx_ring_drops = 0;
    let mut ipintrq_drops = 0;
    let mut screend_q_drops = 0;
    let mut screend_denied = 0;
    let mut socket_q_drops = 0;
    let mut app_delivered = 0;
    let mut ifq_drops = 0;
    let mut latency = LatencyStats::new();
    let mut drops = DropStats::new();
    let mut fault = FaultStats::default();
    let mut class_stats: Option<ClassStats> = None;
    for e in &engines {
        let s = e.workload().stats();
        if let Some(cs) = &s.class {
            match &mut class_stats {
                Some(acc) => acc.merge(cs),
                None => class_stats = Some(cs.clone()),
            }
        }
        offered_pps += s.offered_pps(freq);
        delivered_pps += s.delivered_pps(freq);
        app_delivered_pps += s.app_delivered_pps(freq);
        transmitted += s.transmitted;
        rx_ring_drops += s.rx_ring_drops();
        ipintrq_drops += s.ipintrq_drops();
        screend_q_drops += s.screend_q_drops();
        screend_denied += s.screend_denied();
        socket_q_drops += s.socket_q_drops();
        app_delivered += s.app_delivered;
        ifq_drops += s.ifq_drops();
        latency.merge(&s.latency);
        drops.merge(&s.drops);
        fault.merge(&s.fault);
    }
    let stats0 = engines[0].workload().stats();
    TrialResult {
        offered_pps,
        delivered_pps,
        transmitted,
        rx_ring_drops,
        ipintrq_drops,
        screend_q_drops,
        screend_denied,
        socket_q_drops,
        app_delivered,
        app_delivered_pps,
        ifq_drops,
        latency_mean: latency.mean(),
        latency_p99: latency.quantile(0.99),
        latency_jitter: latency.jitter(),
        latency,
        drops,
        per_cpu,
        timeline: stats0.timeline.clone(),
        pool: stats0.pool.unwrap_or_default(),
        fault,
        flows: flow_reg,
        events: obs_events,
        fold,
        classes: class_summaries(class_stats.as_ref(), freq),
    }
}

/// End-state invariants measured by [`run_chaos_trial`] after the fault
/// storm and the post-window drain.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The trial's measured numbers (fault counters included).
    pub result: TrialResult,
    /// Whether the interrupt gate ended the run open — a permanently
    /// inhibited gate is the wedge the recovery machinery must prevent.
    pub gate_open_at_end: bool,
    /// The gate's final inhibit bitmask (zero iff open).
    pub gate_bits: u8,
    /// Depth of the screend queue after the drain: it must empty after
    /// every injected crash and restart.
    pub screend_q_len: usize,
    /// Packets still inside the kernel after the drain (computed from
    /// the conserved arrival/delivery/drop ledger, which panics if the
    /// ledger itself does not balance).
    pub in_flight: u64,
    /// Times the watermark feedback's timeout safety net fired.
    pub timeout_resumes: u64,
}

/// Runs one trial like [`run_trial`], then keeps the simulation alive
/// for a 200 ms (simulated) drain with no new arrivals and reports the
/// end-state invariants a gracefully degrading kernel must satisfy.
/// Intended for specs whose config carries a
/// [`FaultPlan`](livelock_machine::fault::FaultPlan), but works (and
/// should be trivially green) without one.
///
/// # Panics
///
/// Panics if the spec is degenerate, or if the kernel's drop ledger
/// fails to conserve packets.
pub fn run_chaos_trial(spec: &TrialSpec) -> ChaosReport {
    let drain = spec.config.cost.freq.cycles_from_millis(200);
    let (result, _, engine) = run_trial_engine(spec, None, drain);
    let kernel = engine.workload();
    ChaosReport {
        gate_open_at_end: kernel.gate_is_open(),
        gate_bits: kernel.gate_bits(),
        screend_q_len: kernel.screend_q_len(),
        in_flight: kernel.stats().in_flight(),
        timeout_resumes: kernel.feedback_timeout_resumes(),
        result,
    }
}

/// Per-buffer capacity of a trial's frame pool. The paper's test frames
/// are minimum-size (60 bytes); ICMP errors quoting them and ARP replies
/// also fit well under this, so pooled buffers never grow.
const POOL_BUF_CAPACITY: usize = 128;

/// Extra pool buffers beyond one-per-packet, covering kernel-originated
/// replies (ARP, ICMP, application echoes) in flight at once.
const POOL_HEADROOM: usize = 64;

/// A labelled rate sweep: the series one figure curve plots.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Curve label (e.g. "quota = 5 packets").
    pub label: String,
    /// One result per requested rate, in order.
    pub trials: Vec<TrialResult>,
}

impl SweepResult {
    /// The `(offered, delivered)` points for analysis and plotting.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.trials.iter().map(TrialResult::point).collect()
    }
}

/// Runs one trial per rate with otherwise identical parameters, fanning
/// trials out according to `par`.
///
/// Each trial is an independent seeded simulation, so the result is
/// bit-for-bit identical across every [`Parallelism`] choice — trials
/// come back in rate order.
pub fn sweep(label: &str, base: &TrialSpec, rates: &[f64], par: Parallelism) -> SweepResult {
    let trials = crate::par::par_map(rates, par.jobs(), |&rate_pps| {
        run_trial(&TrialSpec {
            rate_pps,
            ..base.clone()
        })
    });
    SweepResult {
        label: label.to_string(),
        trials,
    }
}

/// The input rates the paper's figures sweep (0-12,000 pkts/s, capped by
/// the Ethernet maximum of ~14,880).
pub fn paper_rates() -> Vec<f64> {
    vec![
        500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use livelock_core::poller::Quota;

    fn quick(config: KernelConfig, rate: f64, n: usize) -> TrialResult {
        run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: n,
            ..TrialSpec::new(config)
        })
    }

    fn unmodified() -> KernelConfig {
        KernelConfig::builder().build()
    }

    fn polled(q: Quota) -> KernelConfig {
        KernelConfig::builder().polled(q).build()
    }

    #[test]
    fn heap_and_calendar_backends_produce_identical_trials() {
        use livelock_machine::cpu::SchedulerKind;
        // Overloaded rate: drops, deferred interrupts and queue churn give
        // the schedulers a dense, tie-heavy event stream to disagree on.
        for (name, cfg) in [
            ("unmodified", unmodified()),
            ("polled", polled(Quota::Limited(10))),
        ] {
            let run = |kind| {
                let mut c = cfg.clone();
                c.scheduler = kind;
                quick(c, 9_000.0, 1_200)
            };
            let h = run(SchedulerKind::Heap);
            let c = run(SchedulerKind::Calendar);
            assert_eq!(h.transmitted, c.transmitted, "{name}");
            assert_eq!(
                h.offered_pps.to_bits(),
                c.offered_pps.to_bits(),
                "{name}: offered rate must be bit-identical"
            );
            assert_eq!(
                h.delivered_pps.to_bits(),
                c.delivered_pps.to_bits(),
                "{name}: delivered rate must be bit-identical"
            );
            assert_eq!(h.latency_mean, c.latency_mean, "{name}");
            assert_eq!(h.latency_p99, c.latency_p99, "{name}");
            assert_eq!(h.latency_jitter, c.latency_jitter, "{name}");
            assert_eq!(h.drops, c.drops, "{name}");
            assert_eq!(h.per_cpu, c.per_cpu, "{name}");
            assert!(
                h.aggregate().events_dispatched > 0,
                "{name}: trial dispatched events"
            );
        }
    }

    #[test]
    fn smp_trials_are_backend_and_rerun_identical() {
        use livelock_machine::cpu::SchedulerKind;
        // The tentpole determinism claim: an SMP trial is a pure function
        // of (config, seed) — same numbers on every scheduler backend and
        // every rerun, at every CPU count.
        for ncpus in [1, 2, 4] {
            let run = |kind| {
                let mut c = KernelConfig::builder().ncpus(ncpus).build();
                c.scheduler = kind;
                quick(c, 9_000.0, 1_200)
            };
            let h = run(SchedulerKind::Heap);
            let c = run(SchedulerKind::Calendar);
            let h2 = run(SchedulerKind::Heap);
            assert_eq!(h, c, "ncpus={ncpus}: backends disagree");
            assert_eq!(h, h2, "ncpus={ncpus}: rerun disagrees");
            assert_eq!(h.per_cpu().len(), ncpus);
        }
    }

    #[test]
    fn smp_shared_queue_serializes_while_polled_path_scales() {
        // COREC-style contention: the unmodified path funnels every CPU
        // into one shared ipintrq drained by CPU 0 alone, so a second CPU
        // buys (almost) nothing; the polled path is per-CPU end to end,
        // so it roughly doubles.
        let n1_unmod = quick(unmodified(), 9_000.0, 2_000);
        let n2_unmod = quick(
            KernelConfig::builder().ncpus(2).build(),
            18_000.0,
            4_000,
        );
        assert!(
            n2_unmod.delivered_pps < 1.4 * n1_unmod.delivered_pps,
            "shared-queue SMP should not scale: {} vs {}",
            n2_unmod.delivered_pps,
            n1_unmod.delivered_pps
        );
        let n1_poll = quick(polled(Quota::Limited(10)), 9_000.0, 2_000);
        let n2_poll = quick(
            KernelConfig::builder()
                .polled(Quota::Limited(10))
                .ncpus(2)
                .build(),
            18_000.0,
            4_000,
        );
        assert!(
            n2_poll.delivered_pps > 1.5 * n1_poll.delivered_pps,
            "per-CPU polling should scale: {} vs {}",
            n2_poll.delivered_pps,
            n1_poll.delivered_pps
        );
    }

    #[test]
    fn smp_per_cpu_ledgers_each_conserve() {
        let r = quick(
            KernelConfig::builder()
                .polled(Quota::Limited(10))
                .ncpus(4)
                .build(),
            20_000.0,
            3_000,
        );
        assert_eq!(r.per_cpu().len(), 4);
        for c in r.per_cpu() {
            let sum: f64 = c.cpu_share.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "cpu {:?} shares sum to {sum}",
                c.cpu
            );
        }
        let agg: f64 = r.aggregate().cpu_share.iter().sum();
        assert!((agg - 1.0).abs() < 1e-9, "aggregate shares sum to {agg}");
    }

    #[test]
    fn imbalanced_flows_are_rescued_by_stealing() {
        // Steer every flow at CPU 0's queue on a 2-CPU stealing cluster:
        // CPU 0's ring overflows, CPU 1 is idle, and the steal path (not
        // the drop path) absorbs the imbalance.
        let spec = TrialSpec {
            rate_pps: 13_000.0,
            n_packets: 3_000,
            ..TrialSpec::new(
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .ncpus(2)
                    .steal(true)
                    .build(),
            )
        };
        // Flows all hashing to queue 0 of 2 (deterministic search).
        let f = PacketFactory::paper_testbed();
        let (src, dst) = (u32::from(f.src_ip), u32::from(f.dst_ip));
        let mut port = f.src_port;
        let mut flows = Vec::new();
        while flows.len() < 8 {
            if rss_queue(src, dst, proto::UDP, port, f.dst_port, 2) == 0 {
                flows.push(port);
            }
            port = port.wrapping_add(1);
        }
        let r = run_smp_trial(&spec, &flows);
        let agg = r.aggregate();
        assert!(
            agg.steals_taken > 0,
            "idle sibling should have stolen work"
        );
        assert_eq!(
            r.per_cpu()[0].steals_published,
            agg.steals_published,
            "only the overloaded CPU publishes"
        );
        assert!(
            r.per_cpu()[1].steals_taken > 0,
            "the idle CPU does the stealing"
        );
        // The same imbalance without stealing drops more at the ring.
        let mut no_steal = spec.clone();
        no_steal.config.topology.steal = false;
        let ns = run_smp_trial(&no_steal, &flows);
        assert!(
            ns.rx_ring_drops > r.rx_ring_drops,
            "stealing should convert ring drops into deliveries: {} !> {}",
            ns.rx_ring_drops,
            r.rx_ring_drops
        );
    }

    #[test]
    fn balanced_flows_cover_every_rss_bucket() {
        let flows = balanced_flows();
        assert_eq!(flows.len(), 64);
        let f = PacketFactory::paper_testbed();
        let (src, dst) = (u32::from(f.src_ip), u32::from(f.dst_ip));
        for nq in [1usize, 2, 4] {
            let mut counts = vec![0usize; nq];
            for &p in &flows {
                counts[rss_queue(src, dst, proto::UDP, p, f.dst_port, nq)] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == 64 / nq),
                "flows must balance {nq} queues, got {counts:?}"
            );
        }
        // Bucket-interleaved: consecutive packets land on distinct queues.
        for w in flows.windows(2) {
            let a = rss_queue(src, dst, proto::UDP, w[0], f.dst_port, 4);
            let b = rss_queue(src, dst, proto::UDP, w[1], f.dst_port, 4);
            assert_ne!(a, b, "adjacent flows share a bucket");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_scalar_shims_mirror_the_aggregate() {
        let r = quick(unmodified(), 2_000.0, 500);
        let agg = r.aggregate();
        assert_eq!(agg.cpu, CpuStats::AGGREGATE);
        assert_eq!(r.user_cpu_frac(), agg.user_cpu_frac);
        assert_eq!(r.cpu_share(), agg.cpu_share);
        assert_eq!(r.interrupts_taken(), agg.interrupts_taken);
        assert_eq!(r.events_dispatched(), agg.events_dispatched);
    }

    #[cfg(feature = "proptest")]
    proptest::proptest! {
        /// RSS steering never loses or invents packets: at any CPU count,
        /// rate and packet count, delivered + every attributed drop +
        /// steal residue accounts for exactly the generated population.
        /// (The NIC-boundary assert inside `run_smp_trial` enforces the
        /// ring-level half; this checks the harness end to end.)
        #[test]
        fn rss_conserves_packets(
            ncpus_pow in 1u32..3,
            rate in 4_000.0f64..26_000.0,
            n in 400usize..1_200,
            seed in 1u64..64,
        ) {
            let ncpus = 1usize << ncpus_pow;
            let spec = TrialSpec {
                rate_pps: rate,
                n_packets: n,
                seed,
                ..TrialSpec::new(
                    KernelConfig::builder()
                        .polled(Quota::Limited(10))
                        .ncpus(ncpus)
                        .build(),
                )
            };
            // run_smp_trial's internal assert is the conservation oracle.
            let r = run_trial(&spec);
            proptest::prop_assert_eq!(r.per_cpu().len(), ncpus);
        }

        /// The class dimension never loses or invents packets either:
        /// at any CPU count, every generated packet is classified
        /// exactly once, the per-class arrived/delivered/shed columns
        /// sum to the aggregate counters, and each class's own ledger
        /// stays within its arrivals. Runs under the drained chaos
        /// harness (fault-free) so the books close exactly — a plain
        /// trial can end with its last wire arrival still in flight.
        #[test]
        fn classed_counters_sum_to_aggregates(
            ncpus_pow in 0u32..3,
            rate in 3_000.0f64..16_000.0,
            n in 400usize..1_000,
            seed in 1u64..32,
        ) {
            use crate::config::ClassifyConfig;
            use crate::stats::DropReason;
            use livelock_net::classify::MatchRule;
            let ncpus = 1usize << ncpus_pow;
            let classes = ClassifyConfig {
                rules: vec![
                    MatchRule::src_port(7_000, TrafficClass::Control),
                    MatchRule::src_port(7_100, TrafficClass::Realtime),
                ],
                ..ClassifyConfig::default()
            };
            let spec = TrialSpec {
                rate_pps: rate,
                n_packets: n,
                seed,
                flows: Some(vec![7_000, 7_100, 7_200, 7_201]),
                ..TrialSpec::new(
                    KernelConfig::builder()
                        .polled(Quota::Limited(10))
                        .screend(Default::default())
                        .classes(classes)
                        .ncpus(ncpus)
                        .build(),
                )
            };
            let r = run_chaos_trial(&spec).result;
            let per = r.per_class();
            proptest::prop_assert_eq!(per.len(), TrafficClass::COUNT);
            let arrived: u64 = per.iter().map(|c| c.arrived).sum();
            let delivered: u64 = per.iter().map(|c| c.delivered).sum();
            let shed: u64 = per.iter().map(|c| c.shed).sum();
            proptest::prop_assert_eq!(arrived, n as u64, "one class per generated packet");
            proptest::prop_assert_eq!(delivered, r.transmitted);
            let shed_drops: u64 = TrafficClass::ALL
                .into_iter()
                .map(|class| r.drops.get(DropReason::ClassShed { class }))
                .sum();
            proptest::prop_assert_eq!(shed, shed_drops);
            for c in per {
                proptest::prop_assert!(
                    c.delivered + c.shed <= c.arrived,
                    "{:?}: {} delivered + {} shed > {} arrived",
                    c.class, c.delivered, c.shed, c.arrived
                );
            }
        }
    }

    #[test]
    fn light_load_is_loss_free_on_both_kernels() {
        for cfg in [unmodified(), polled(Quota::Limited(10))] {
            let r = quick(cfg, 1_000.0, 800);
            assert!(
                r.delivered_pps > 0.97 * r.offered_pps,
                "delivered {} of {}",
                r.delivered_pps,
                r.offered_pps
            );
            assert_eq!(r.ipintrq_drops + r.ifq_drops + r.screend_q_drops, 0);
        }
    }

    #[test]
    fn offered_rate_tracks_nominal() {
        let r = quick(polled(Quota::Limited(10)), 3_000.0, 1_500);
        assert!(
            (r.offered_pps - 3_000.0).abs() < 300.0,
            "offered {}",
            r.offered_pps
        );
    }

    #[test]
    fn overload_degrades_unmodified_kernel() {
        let low = quick(unmodified(), 3_000.0, 1_500);
        let high = quick(unmodified(), 11_000.0, 4_000);
        assert!(
            high.delivered_pps < low.delivered_pps,
            "expected degradation: {} !< {}",
            high.delivered_pps,
            low.delivered_pps
        );
        assert!(high.rx_ring_drops + high.ipintrq_drops > 0);
    }

    #[test]
    fn overload_does_not_collapse_polled_kernel() {
        let high = quick(polled(Quota::Limited(10)), 11_000.0, 4_000);
        assert!(
            high.delivered_pps > 3_000.0,
            "polled kernel should sustain its MLFRR, got {}",
            high.delivered_pps
        );
    }

    #[test]
    fn latency_is_sane_at_light_load() {
        let r = quick(polled(Quota::Limited(10)), 500.0, 400);
        // One packet alone in the system: a few hundred microseconds of
        // processing plus 67.2 us of output serialization.
        assert!(
            r.latency_mean >= Nanos::from_micros(200),
            "{}",
            r.latency_mean
        );
        assert!(
            r.latency_mean <= Nanos::from_millis(3),
            "{}",
            r.latency_mean
        );
    }

    #[test]
    fn steady_state_forwarding_never_allocates() {
        let r = quick(unmodified(), 2_000.0, 600);
        assert_eq!(r.pool.misses, 0, "no per-packet heap allocation");
        assert!(r.pool.acquired >= 600, "every frame came from the pool");
        // The trial window ends at the last arrival, so the final packets
        // may still be in flight; everything else has been recycled.
        assert!(r.pool.outstanding <= 8, "only the tail holds buffers");
        assert_eq!(r.pool.recycled + r.pool.outstanding as u64, r.pool.acquired);
    }

    #[test]
    fn determinism_same_seed_same_numbers() {
        let a = quick(unmodified(), 7_000.0, 1_000);
        let b = quick(unmodified(), 7_000.0, 1_000);
        assert_eq!(a.transmitted, b.transmitted);
        assert_eq!(a.delivered_pps, b.delivered_pps);
        assert_eq!(a.per_cpu, b.per_cpu);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let base = TrialSpec {
            rate_pps: 7_000.0,
            n_packets: 1_000,
            ..TrialSpec::new(unmodified())
        };
        let a = run_trial(&base);
        let b = run_trial(&TrialSpec { seed: 2, ..base });
        assert_ne!(
            (a.transmitted, a.aggregate().interrupts_taken),
            (b.transmitted, b.aggregate().interrupts_taken),
            "jitter should differ across seeds"
        );
    }

    #[test]
    fn sweep_produces_labelled_points() {
        let base = TrialSpec {
            n_packets: 300,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let s = sweep("test", &base, &[500.0, 1_000.0], Parallelism::Serial);
        assert_eq!(s.label, "test");
        assert_eq!(s.trials.len(), 2);
        let pts = s.points();
        assert!(pts[1].offered > pts[0].offered);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let base = TrialSpec {
            n_packets: 400,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let rates = [500.0, 2_000.0, 6_000.0, 11_000.0];
        let serial = sweep("det", &base, &rates, Parallelism::Serial);
        for jobs in [2, 4] {
            let par = sweep("det", &base, &rates, Parallelism::Jobs(jobs));
            assert_eq!(par.label, serial.label);
            // Every field of every trial, in the same order.
            assert_eq!(par.trials, serial.trials, "jobs = {jobs}");
        }
    }

    #[test]
    fn cpu_share_sums_to_one_and_tracks_load() {
        let light = quick(unmodified(), 500.0, 400);
        let heavy = quick(unmodified(), 11_000.0, 3_000);
        for r in [&light, &heavy] {
            let sum: f64 = r.aggregate().cpu_share.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        }
        let rx = CpuClass::RxIntr.index();
        let idle = CpuClass::Idle.index();
        assert!(
            heavy.aggregate().cpu_share[rx] > light.aggregate().cpu_share[rx],
            "rx share should grow with load: {} !> {}",
            heavy.aggregate().cpu_share[rx],
            light.aggregate().cpu_share[rx]
        );
        assert!(
            light.aggregate().cpu_share[idle] > 0.5,
            "light load is mostly idle, got {}",
            light.aggregate().cpu_share[idle]
        );
    }

    #[test]
    fn timeline_is_off_by_default_and_on_when_configured() {
        let r = quick(unmodified(), 2_000.0, 500);
        assert!(r.timeline.is_none(), "telemetry must be opt-in");

        let cfg = KernelConfig::builder()
            .telemetry(crate::telemetry::TelemetryConfig::default())
            .build();
        let r = quick(cfg, 2_000.0, 500);
        let tl = r.timeline.expect("sampler enabled");
        assert!(!tl.is_empty(), "clock ticks should have produced samples");
        let csv = tl.to_csv(unmodified().cost.freq);
        assert!(csv.starts_with("time_us,rx_intr,"));
    }

    #[test]
    fn traced_trial_measures_the_same_numbers() {
        let spec = TrialSpec {
            rate_pps: 3_000.0,
            n_packets: 500,
            ..TrialSpec::new(polled(Quota::Limited(10)))
        };
        let plain = run_trial(&spec);
        let (traced, json) = run_trial_traced(&spec, 1 << 16);
        assert_eq!(plain, traced, "tracing must not perturb the trial");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("nic-rx #"), "interrupt track names");
        assert!(json.contains("netpoll"), "thread track names");
    }

    #[test]
    fn observe_is_zero_perturbation() {
        use crate::config::ScreendConfig;
        use crate::telemetry::ObserveConfig;
        // The observability layer is a pure observer: a watched trial
        // measures bit-identically to an unwatched one, on both kernels,
        // at an overloaded rate where every code path (drops, feedback,
        // screend) is exercised.
        for polled_mode in [false, true] {
            let mk = |obs: bool| {
                let mut b = KernelConfig::builder().screend(ScreendConfig::default());
                if polled_mode {
                    b = b.polled(Quota::Limited(10)).feedback(Default::default());
                }
                if obs {
                    b = b.observe(ObserveConfig::default());
                }
                b.build()
            };
            let base = quick(mk(false), 9_000.0, 1_500);
            let mut watched = quick(mk(true), 9_000.0, 1_500);
            assert!(watched.flows.is_some(), "registry allocated");
            assert!(watched.fold.is_some(), "cycle fold enabled");
            watched.flows = None;
            watched.fold = None;
            watched.events.clear();
            assert_eq!(
                watched, base,
                "observability must not perturb the trial (polled={polled_mode})"
            );
        }
    }

    #[test]
    fn per_flow_registry_conserves_and_attributes() {
        use crate::telemetry::ObserveConfig;
        let spec = TrialSpec {
            rate_pps: 9_000.0,
            n_packets: 1_500,
            flows: Some(vec![7001, 7002, 7003, 7004]),
            ..TrialSpec::new(
                KernelConfig::builder()
                    .observe(ObserveConfig::default())
                    .build(),
            )
        };
        // The chaos harness drains the kernel for 200 ms past the window,
        // so the final arrival (scheduled exactly at window end) is
        // processed and conservation is exact.
        let r = run_chaos_trial(&spec).result;
        let reg = r.flows.as_ref().expect("observability on");
        assert_eq!(
            reg.total_arrivals(),
            spec.n_packets as u64,
            "every generated packet is attributed, overflowed, or unattributed"
        );
        assert_eq!(reg.unattributed_arrivals(), 0, "all test traffic is UDP");
        let per = r.per_flow();
        assert_eq!(per.len(), 4, "one registry entry per source port");
        for f in per {
            assert!(f.arrived > 0, "every flow saw traffic");
            assert!(
                f.delivered + f.drops.total() <= f.arrived,
                "per-flow ledger over-counts"
            );
            if f.delivered > 0 {
                assert_eq!(f.latency.count(), f.delivered);
                assert!(f.first_delivery.unwrap() <= f.last_delivery.unwrap());
            }
        }
        let delivered: u64 = r.per_flow().iter().map(|f| f.delivered).sum();
        assert!(delivered > 0, "overload still forwards something");
    }

    #[test]
    fn smp_merged_registry_conserves() {
        use crate::telemetry::ObserveConfig;
        let spec = TrialSpec {
            rate_pps: 14_000.0,
            n_packets: 2_000,
            ..TrialSpec::new(
                KernelConfig::builder()
                    .polled(Quota::Limited(10))
                    .ncpus(2)
                    .observe(ObserveConfig::default())
                    .build(),
            )
        };
        let r = run_trial(&spec);
        let reg = r.flows.as_ref().expect("observability on");
        assert_eq!(reg.total_arrivals(), spec.n_packets as u64);
        assert_eq!(r.per_flow().len(), 64, "the balanced flow set");
    }

    #[test]
    fn detector_flags_unmodified_overload_but_not_polled() {
        use crate::config::ScreendConfig;
        use crate::telemetry::{ObsEventKind, ObserveConfig};
        // The acceptance experiment: above the MLFRR with screend, the
        // unmodified kernel livelocks (Figure 6-3) and the detector must
        // date the onset; the polled kernel with feedback keeps making
        // progress at the same offered load and must stay quiet.
        let run = |polled_mode: bool| {
            let mut b = KernelConfig::builder()
                .screend(ScreendConfig::default())
                .observe(ObserveConfig::default());
            if polled_mode {
                b = b.polled(Quota::Limited(10)).feedback(Default::default());
            }
            run_trial(&TrialSpec {
                rate_pps: 12_000.0,
                n_packets: 4_000,
                ..TrialSpec::new(b.build())
            })
        };
        let unmod = run(false);
        let onset = unmod
            .events
            .iter()
            .find(|ev| matches!(ev.kind, ObsEventKind::LivelockOnset { .. }));
        let onset = onset.expect("unmodified kernel above MLFRR must livelock");
        assert!(!onset.at.is_zero(), "onset carries a cycle timestamp");
        let polled = run(true);
        assert!(
            !polled
                .events
                .iter()
                .any(|ev| matches!(ev.kind, ObsEventKind::LivelockOnset { .. })),
            "polled kernel with feedback must not livelock: {:?}",
            polled.events
        );
    }

    #[test]
    fn fold_is_exported_and_conserves_trial_cycles() {
        use crate::telemetry::ObserveConfig;
        let r = quick(
            KernelConfig::builder()
                .observe(ObserveConfig::default())
                .build(),
            6_000.0,
            1_000,
        );
        let fold = r.fold.as_ref().expect("fold enabled with observe");
        let folded = fold.folded(crate::router::tag_label);
        assert!(!folded.is_empty());
        assert!(
            folded.lines().all(|l| l.starts_with("cpu0;")),
            "single-CPU trial folds to one cpu frame"
        );
        assert!(folded.contains(";rx_pkt "), "rx work is present");
    }

    #[test]
    fn too_short_trial_still_gets_one_telemetry_sample() {
        // 10 packets at 10,000 pkts/s span ~1 ms — less than the default
        // 4-tick sampling interval — so without the drain-time fallback
        // the requested timeline would come back empty.
        let cfg = KernelConfig::builder()
            .telemetry(crate::telemetry::TelemetryConfig::default())
            .build();
        let r = quick(cfg, 10_000.0, 10);
        let tl = r.timeline.expect("sampler enabled");
        assert!(
            !tl.is_empty(),
            "a too-short trial still records one final sample at drain"
        );
    }

    #[test]
    fn paper_rates_are_increasing_and_capped() {
        let r = paper_rates();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!(*r.last().unwrap() <= 14_880.0);
    }
}
