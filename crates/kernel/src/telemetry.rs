//! Runtime telemetry: the clock-tick driven sampler and its timeline.
//!
//! Throughput curves show livelock's *outcome*; this module records it
//! *unfolding*. On every Nth clock tick the router samples the machine's
//! conserved [`CycleLedger`] (per-class CPU share since the previous
//! sample), every queue depth along the forwarding path, the interrupt
//! gate's inhibit-reason bitmask, and the hardware interrupt rate — into
//! [`sim::TimeSeries`](livelock_sim::TimeSeries) columns that export as
//! one CSV ([`Timeline::to_csv`]).
//!
//! Memory is bounded: when a series reaches
//! [`TelemetryConfig::max_samples`], every series is decimated (every
//! second sample dropped) and the sampling interval doubles, so an
//! arbitrarily long run keeps a uniform grid at whatever resolution fits
//! the budget. Sampling is off unless
//! [`KernelConfig::telemetry`](crate::config::KernelConfig::telemetry)
//! is set, and costs nothing when off.

use livelock_machine::{CpuClass, CpuId, CycleLedger};
use livelock_sim::{Cycles, Freq, TimeSeries};

/// Sampler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Clock ticks between samples (1 = every tick, i.e. every simulated
    /// millisecond with the calibrated cost model). The default of 4
    /// keeps the sampler's wall-clock cost well under the `perf` bin's 2%
    /// budget while a canonical 10,000-packet overload trial still
    /// records a few hundred samples.
    pub interval_ticks: u32,
    /// Sample budget per series; reaching it decimates all series and
    /// doubles the effective interval.
    pub max_samples: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_ticks: 4,
            max_samples: 4096,
        }
    }
}

/// Queue depths along the forwarding path at one sampling instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDepths {
    /// Frames waiting in receive rings (summed over interfaces).
    pub rx_ring: usize,
    /// Packets in `ipintrq` (unmodified kernel).
    pub ipintrq: usize,
    /// Packets queued to the screend process.
    pub screend_q: usize,
    /// Packets in output interface queues (summed over interfaces).
    pub out_ifq: usize,
    /// Datagrams in the local socket buffer (end-system mode).
    pub socket_q: usize,
}

/// The recorded telemetry time-series. All series sample at the same
/// instants, so row `i` of each describes the same moment.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// Which CPU's kernel recorded this timeline (every series belongs to
    /// one CPU; SMP trials keep one `Timeline` per CPU).
    cpu: CpuId,
    interval_ticks: u32,
    max_samples: usize,
    ticks_since_sample: u32,
    last_ledger: CycleLedger,
    last_taken: u64,
    last_at: Cycles,
    /// Per-class CPU share over each sampling interval, indexed by
    /// [`CpuClass::index`] ([`CpuClass::ALL`] order). Each sample's nine
    /// values sum to 1 — the ledger's conservation, interval by interval.
    pub cpu_share: [TimeSeries; CpuClass::COUNT],
    /// Receive-ring depth (frames, summed over interfaces).
    pub rx_ring: TimeSeries,
    /// `ipintrq` depth.
    pub ipintrq: TimeSeries,
    /// Screend queue depth.
    pub screend_q: TimeSeries,
    /// Output interface queue depth (summed over interfaces).
    pub out_ifq: TimeSeries,
    /// Local socket buffer depth.
    pub socket_q: TimeSeries,
    /// The interrupt gate's inhibit-reason bitmask
    /// ([`InhibitReason::bit_index`](livelock_core::gate::InhibitReason::bit_index)
    /// gives each bit); 0 = gate open.
    pub gate_bits: TimeSeries,
    /// Hardware interrupts per second over each sampling interval.
    pub intr_rate: TimeSeries,
}

impl Timeline {
    /// Creates an empty timeline for the given sampler configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Timeline {
            cpu: CpuId(0),
            interval_ticks: cfg.interval_ticks.max(1),
            max_samples: cfg.max_samples.max(2),
            ticks_since_sample: 0,
            last_ledger: CycleLedger::new(),
            last_taken: 0,
            last_at: Cycles::ZERO,
            cpu_share: Default::default(),
            rx_ring: TimeSeries::new(),
            ipintrq: TimeSeries::new(),
            screend_q: TimeSeries::new(),
            out_ifq: TimeSeries::new(),
            socket_q: TimeSeries::new(),
            gate_bits: TimeSeries::new(),
            intr_rate: TimeSeries::new(),
        }
    }

    /// Tags the timeline with the CPU whose kernel records it.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        self.cpu = cpu;
    }

    /// The CPU whose kernel recorded this timeline.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Clock-tick hook: returns `true` when a sample is due (and resets
    /// the tick countdown).
    pub fn on_tick(&mut self) -> bool {
        self.ticks_since_sample += 1;
        if self.ticks_since_sample >= self.interval_ticks {
            self.ticks_since_sample = 0;
            true
        } else {
            false
        }
    }

    /// The effective sampling interval in ticks (doubles on decimation).
    pub fn interval_ticks(&self) -> u32 {
        self.interval_ticks
    }

    /// Number of samples recorded (per series).
    pub fn len(&self) -> usize {
        self.gate_bits.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.gate_bits.is_empty()
    }

    /// Records one sample at time `now`: per-class CPU shares over the
    /// interval since the previous sample (from the conserved `ledger`),
    /// queue depths, gate state, and the interrupt rate derived from the
    /// controller's cumulative `taken` count.
    pub fn sample(
        &mut self,
        now: Cycles,
        ledger: CycleLedger,
        taken: u64,
        depths: QueueDepths,
        gate_bits: u8,
        freq: Freq,
    ) {
        let delta = ledger.since(&self.last_ledger);
        let shares = delta.shares();
        for (series, share) in self.cpu_share.iter_mut().zip(shares) {
            series.push(now, share);
        }
        self.rx_ring.push(now, depths.rx_ring as f64);
        self.ipintrq.push(now, depths.ipintrq as f64);
        self.screend_q.push(now, depths.screend_q as f64);
        self.out_ifq.push(now, depths.out_ifq as f64);
        self.socket_q.push(now, depths.socket_q as f64);
        self.gate_bits.push(now, f64::from(gate_bits));
        let span_secs = freq.secs_from_cycles(now - self.last_at);
        let rate = if span_secs > 0.0 {
            (taken - self.last_taken) as f64 / span_secs
        } else {
            0.0
        };
        self.intr_rate.push(now, rate);

        self.last_ledger = ledger;
        self.last_taken = taken;
        self.last_at = now;
        if self.len() >= self.max_samples {
            self.decimate();
        }
    }

    /// Halves every series and doubles the sampling interval (bounded
    /// memory for unbounded runs).
    fn decimate(&mut self) {
        for s in &mut self.cpu_share {
            s.decimate();
        }
        for s in [
            &mut self.rx_ring,
            &mut self.ipintrq,
            &mut self.screend_q,
            &mut self.out_ifq,
            &mut self.socket_q,
            &mut self.gate_bits,
            &mut self.intr_rate,
        ] {
            s.decimate();
        }
        self.interval_ticks = self.interval_ticks.saturating_mul(2);
    }

    /// Renders the timeline as CSV: one row per sample, a `time_us`
    /// column, the nine per-class share columns (labelled by
    /// [`CpuClass::label`]), the five queue depths, the gate bitmask and
    /// the interrupt rate. Output is deterministic: same samples, same
    /// bytes.
    pub fn to_csv(&self, freq: Freq) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_us");
        for c in CpuClass::ALL {
            let _ = write!(out, ",{}", c.label());
        }
        out.push_str(",rx_ring,ipintrq,screend_q,out_ifq,socket_q,gate_bits,intr_rate_hz\n");
        for i in 0..self.len() {
            let (at, _) = self.gate_bits.points()[i];
            let _ = write!(out, "{:.1}", freq.nanos_from_cycles(at).as_micros_f64());
            for s in &self.cpu_share {
                let _ = write!(out, ",{:.6}", s.points()[i].1);
            }
            for s in [
                &self.rx_ring,
                &self.ipintrq,
                &self.screend_q,
                &self.out_ifq,
                &self.socket_q,
                &self.gate_bits,
            ] {
                let _ = write!(out, ",{:.0}", s.points()[i].1);
            }
            let _ = writeln!(out, ",{:.1}", self.intr_rate.points()[i].1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_at(rx: u64, idle: u64) -> CycleLedger {
        let mut l = CycleLedger::new();
        l.charge(CpuClass::RxIntr, Cycles::new(rx));
        l.charge(CpuClass::Idle, Cycles::new(idle));
        l
    }

    #[test]
    fn on_tick_respects_interval() {
        let mut tl = Timeline::new(TelemetryConfig {
            interval_ticks: 3,
            max_samples: 64,
        });
        let due: Vec<bool> = (0..6).map(|_| tl.on_tick()).collect();
        assert_eq!(due, [false, false, true, false, false, true]);
    }

    #[test]
    fn shares_cover_each_interval_exactly() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig::default());
        tl.sample(
            Cycles::new(1_000),
            ledger_at(600, 400),
            10,
            QueueDepths::default(),
            0,
            freq,
        );
        // Second interval: 1000 more cycles, all rx.
        tl.sample(
            Cycles::new(2_000),
            ledger_at(1_600, 400),
            30,
            QueueDepths::default(),
            0b101,
            freq,
        );
        let rx = &tl.cpu_share[CpuClass::RxIntr.index()];
        assert_eq!(rx.points()[0].1, 0.6);
        assert_eq!(rx.points()[1].1, 1.0);
        let idle = &tl.cpu_share[CpuClass::Idle.index()];
        assert_eq!(idle.points()[1].1, 0.0);
        assert_eq!(tl.gate_bits.points()[1].1, 5.0);
        // 20 interrupts over 1000 cycles at 100 MHz = 10 us → 2e6/s.
        assert!((tl.intr_rate.points()[1].1 - 2_000_000.0).abs() < 1.0);
        // Every sample's shares sum to 1.
        for i in 0..tl.len() {
            let sum: f64 = tl.cpu_share.iter().map(|s| s.points()[i].1).sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn decimation_bounds_memory_and_doubles_interval() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig {
            interval_ticks: 1,
            max_samples: 8,
        });
        for i in 1..=40u64 {
            tl.sample(
                Cycles::new(i * 1_000),
                ledger_at(i * 1_000, 0),
                i,
                QueueDepths::default(),
                0,
                freq,
            );
        }
        assert!(tl.len() <= 8, "bounded: {} samples", tl.len());
        assert!(tl.interval_ticks() > 1, "interval doubled");
        for s in &tl.cpu_share {
            assert_eq!(s.len(), tl.len(), "series stay in lockstep");
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig::default());
        tl.sample(
            Cycles::new(100_000),
            ledger_at(50_000, 50_000),
            5,
            QueueDepths {
                rx_ring: 3,
                ..QueueDepths::default()
            },
            1,
            freq,
        );
        let csv = tl.to_csv(freq);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_us,rx_intr,"));
        assert!(header.ends_with("gate_bits,intr_rate_hz"));
        assert_eq!(lines.count(), 1);
        assert!(csv.contains(",3,0,0,0,0,1,"), "depths and gate bits");
    }
}
