//! Runtime telemetry: the clock-tick driven sampler and its timeline.
//!
//! Throughput curves show livelock's *outcome*; this module records it
//! *unfolding*. On every Nth clock tick the router samples the machine's
//! conserved [`CycleLedger`] (per-class CPU share since the previous
//! sample), every queue depth along the forwarding path, the interrupt
//! gate's inhibit-reason bitmask, and the hardware interrupt rate — into
//! [`sim::TimeSeries`](livelock_sim::TimeSeries) columns that export as
//! one CSV ([`Timeline::to_csv`]).
//!
//! Memory is bounded: when a series reaches
//! [`TelemetryConfig::max_samples`], every series is decimated (every
//! second sample dropped) and the sampling interval doubles, so an
//! arbitrarily long run keeps a uniform grid at whatever resolution fits
//! the budget. Sampling is off unless
//! [`KernelConfig::telemetry`](crate::config::KernelConfig::telemetry)
//! is set, and costs nothing when off.
//!
//! The module also hosts the **online livelock detector**
//! ([`LivelockDetector`]): windowed delivered/offered/user-progress
//! slopes judged at clock ticks, emitting typed, cycle-timestamped
//! [`ObsEvent`]s (onset, recovery, per-flow starvation, priority
//! inversion) the moment the pathology sets in — rather than inferring
//! it from end-of-trial aggregates. It runs only when
//! [`KernelConfig::observe`](crate::config::KernelConfig::observe) is
//! set, and like the sampler it is pure bookkeeping: enabled or not, the
//! simulated run is bit-identical.

use livelock_machine::{CpuClass, CpuId, CycleLedger};
use livelock_sim::{Cycles, Freq, Nanos, TimeSeries};

use crate::flows::FlowRegistry;

/// Sampler knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Clock ticks between samples (1 = every tick, i.e. every simulated
    /// millisecond with the calibrated cost model). The default of 4
    /// keeps the sampler's wall-clock cost well under the `perf` bin's 2%
    /// budget while a canonical 10,000-packet overload trial still
    /// records a few hundred samples.
    pub interval_ticks: u32,
    /// Sample budget per series; reaching it decimates all series and
    /// doubles the effective interval.
    pub max_samples: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_ticks: 4,
            max_samples: 4096,
        }
    }
}

/// Knobs for the per-flow observability layer: the flow metrics registry
/// ([`FlowRegistry`]), the online livelock detector
/// ([`LivelockDetector`]), and the machine's cycle-ledger flamegraph
/// fold. `None` in
/// [`KernelConfig::observe`](crate::config::KernelConfig::observe) (the
/// default) allocates none of it and perturbs nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObserveConfig {
    /// Distinct flows the registry can track; later flows count as
    /// overflow instead of growing the table.
    pub flow_slots: usize,
    /// Clock ticks per detector window (with the calibrated cost model,
    /// one tick is one simulated millisecond).
    pub window_ticks: u32,
    /// Minimum arrivals in a window before the detector judges it —
    /// idle or trickle windows carry no livelock signal.
    pub min_window_arrivals: u64,
    /// Livelock onset: delivered/arrived in a window falls below this.
    pub onset_frac: f64,
    /// Recovery: delivered/arrived in a window rises back above this
    /// (above `onset_frac` for hysteresis, so jitter at the threshold
    /// does not flap events).
    pub recovery_frac: f64,
    /// Consecutive windows a flow must see arrivals but zero deliveries
    /// before a `FlowStarved` event fires (once per flow).
    pub starve_windows: u32,
    /// Consecutive violated windows (`Bulk` served while `Control`
    /// misses its SLO or starves) before a `PriorityInversion` event
    /// fires — a single window is fault noise, a streak is inversion.
    pub inversion_windows: u32,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            flow_slots: 128,
            window_ticks: 8,
            min_window_arrivals: 16,
            onset_frac: 0.05,
            recovery_frac: 0.25,
            starve_windows: 4,
            inversion_windows: 2,
        }
    }
}

/// What the online detector observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsEventKind {
    /// The delivered fraction of a loaded window collapsed below the
    /// onset threshold: receive livelock has set in.
    LivelockOnset {
        /// Arrivals in the offending window.
        arrived: u64,
        /// Deliveries in the offending window.
        delivered: u64,
    },
    /// A livelocked kernel's delivered fraction climbed back above the
    /// recovery threshold (or input pressure ended).
    Recovery {
        /// Arrivals in the recovering window.
        arrived: u64,
        /// Deliveries in the recovering window.
        delivered: u64,
    },
    /// One flow kept arriving but was served nothing for
    /// [`ObserveConfig::starve_windows`] consecutive windows (fires once
    /// per flow).
    FlowStarved {
        /// The starved flow's RSS hash
        /// ([`flow_hash`](crate::flows::flow_hash)).
        flow_hash: u64,
        /// Consecutive served-nothing windows at the moment of firing.
        windows: u32,
    },
    /// Packets arrived all window while the configured compute-bound
    /// user process made zero progress: the paper's starvation of user
    /// work by receive processing (fires once per episode).
    PriorityInversion {
        /// Arrivals in the inverted window.
        arrived: u64,
    },
}

impl ObsEventKind {
    /// Short stable name for event streams and markers.
    pub fn label(&self) -> &'static str {
        match self {
            ObsEventKind::LivelockOnset { .. } => "livelock-onset",
            ObsEventKind::Recovery { .. } => "recovery",
            ObsEventKind::FlowStarved { .. } => "flow-starved",
            ObsEventKind::PriorityInversion { .. } => "priority-inversion",
        }
    }
}

/// One typed, cycle-timestamped observability event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// When the detector window that triggered the event closed.
    pub at: Cycles,
    /// The CPU whose kernel emitted it.
    pub cpu: CpuId,
    /// What was observed.
    pub kind: ObsEventKind,
}

impl ObsEvent {
    /// One JSON object (no trailing newline) with a stable field order,
    /// for JSONL event streams: same events, same bytes.
    pub fn to_json(&self, freq: Freq) -> String {
        let mut out = format!(
            "{{\"at_cycles\":{},\"at_us\":{:.1},\"cpu\":{},\"kind\":\"{}\"",
            self.at.raw(),
            freq.nanos_from_cycles(self.at).as_micros_f64(),
            self.cpu.0,
            self.kind.label()
        );
        use std::fmt::Write as _;
        match self.kind {
            ObsEventKind::LivelockOnset { arrived, delivered }
            | ObsEventKind::Recovery { arrived, delivered } => {
                let _ = write!(out, ",\"arrived\":{arrived},\"delivered\":{delivered}");
            }
            ObsEventKind::FlowStarved { flow_hash, windows } => {
                let _ = write!(out, ",\"flow_hash\":{flow_hash},\"windows\":{windows}");
            }
            ObsEventKind::PriorityInversion { arrived } => {
                let _ = write!(out, ",\"arrived\":{arrived}");
            }
        }
        out.push('}');
        out
    }
}

/// The online livelock detector: windowed delivered-rate, offered-rate
/// and user-progress slopes computed at clock ticks, per-flow starvation
/// watch over the [`FlowRegistry`], typed [`ObsEvent`]s out.
///
/// Pure bookkeeping — it charges no cycles, schedules no events, and
/// never touches kernel state, so an enabled detector observes the exact
/// run a disabled one would have produced.
#[derive(Clone, Debug)]
pub struct LivelockDetector {
    cfg: ObserveConfig,
    cpu: CpuId,
    ticks_in_window: u32,
    last_arrived: u64,
    last_delivered: u64,
    last_user_chunks: u64,
    livelocked: bool,
    inversion_latched: bool,
    class_inversion_latched: bool,
    class_violation_streak: u32,
    class_last_control_arrived: u64,
    class_last_control_delivered: u64,
    class_last_bulk_delivered: u64,
    slot_arrived: Vec<u64>,
    slot_delivered: Vec<u64>,
    slot_starved: Vec<u32>,
    slot_fired: Vec<bool>,
    events: Vec<ObsEvent>,
}

impl LivelockDetector {
    /// Creates a detector with all per-flow watch state preallocated.
    pub fn new(cfg: ObserveConfig) -> Self {
        let slots = cfg.flow_slots.max(1);
        LivelockDetector {
            cfg,
            cpu: CpuId(0),
            ticks_in_window: 0,
            last_arrived: 0,
            last_delivered: 0,
            last_user_chunks: 0,
            livelocked: false,
            inversion_latched: false,
            class_inversion_latched: false,
            class_violation_streak: 0,
            class_last_control_arrived: 0,
            class_last_control_delivered: 0,
            class_last_bulk_delivered: 0,
            slot_arrived: vec![0; slots],
            slot_delivered: vec![0; slots],
            slot_starved: vec![0; slots],
            slot_fired: vec![false; slots],
            events: Vec::new(),
        }
    }

    /// Tags the detector with the CPU whose kernel drives it.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        self.cpu = cpu;
    }

    /// Whether the most recent judged window was livelocked.
    pub fn is_livelocked(&self) -> bool {
        self.livelocked
    }

    /// Events emitted so far, in time order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Drains the emitted events.
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Clock-tick hook: accumulates ticks and, when a window closes,
    /// judges it. `arrived`/`delivered`/`user_chunks` are the kernel's
    /// *cumulative* counters (the detector differences them itself);
    /// `user_present` says whether a compute-bound user process is
    /// configured; `flows` is the per-flow registry when enabled.
    /// Returns `true` when this tick closed a window, so callers can
    /// feed window-aligned signals (the per-class SLO judge) in step.
    pub fn on_tick(
        &mut self,
        now: Cycles,
        arrived: u64,
        delivered: u64,
        user_chunks: u64,
        user_present: bool,
        flows: Option<&FlowRegistry>,
    ) -> bool {
        self.ticks_in_window += 1;
        if self.ticks_in_window < self.cfg.window_ticks.max(1) {
            return false;
        }
        self.ticks_in_window = 0;

        let arr = arrived.saturating_sub(self.last_arrived);
        let del = delivered.saturating_sub(self.last_delivered);
        let user = user_chunks.saturating_sub(self.last_user_chunks);
        self.last_arrived = arrived;
        self.last_delivered = delivered;
        self.last_user_chunks = user_chunks;

        let loaded = arr >= self.cfg.min_window_arrivals.max(1);
        let frac_below = |frac: f64| (del as f64) < frac * (arr as f64);
        if !self.livelocked && loaded && frac_below(self.cfg.onset_frac) {
            self.livelocked = true;
            self.events.push(ObsEvent {
                at: now,
                cpu: self.cpu,
                kind: ObsEventKind::LivelockOnset {
                    arrived: arr,
                    delivered: del,
                },
            });
        } else if self.livelocked && (!loaded || !frac_below(self.cfg.recovery_frac)) {
            self.livelocked = false;
            self.events.push(ObsEvent {
                at: now,
                cpu: self.cpu,
                kind: ObsEventKind::Recovery {
                    arrived: arr,
                    delivered: del,
                },
            });
        }

        if user_present {
            // The latch edge: any window in which the user process made
            // progress ends the inversion episode — even a lightly
            // loaded one. Only a *loaded* window with zero progress
            // starts (or continues) an episode, and each episode fires
            // exactly one event.
            if user > 0 {
                self.inversion_latched = false;
            } else if loaded && !self.inversion_latched {
                self.inversion_latched = true;
                self.events.push(ObsEvent {
                    at: now,
                    cpu: self.cpu,
                    kind: ObsEventKind::PriorityInversion { arrived: arr },
                });
            }
        }

        if let Some(reg) = flows {
            self.watch_flows(now, reg);
        }
        true
    }

    /// Window-aligned cross-class judge, fed by the kernel when flow
    /// classification is on (call right after [`LivelockDetector::on_tick`]
    /// returns `true`). The inputs are *cumulative* per-class counters
    /// (differenced here, like `on_tick`'s) plus the `Control` class's
    /// windowed p99 sojourn and its SLO. A window shows real
    /// cross-class priority inversion when `Bulk` traffic was still
    /// being served while `Control` either blew its p99 SLO or, despite
    /// arrivals, was served nothing at all; the event fires only after
    /// [`ObserveConfig::inversion_windows`] *consecutive* such windows
    /// (a single window is fault noise — a lost interrupt or a consumer
    /// restart — a streak is inversion). Fires one
    /// [`ObsEventKind::PriorityInversion`] per episode: the latch
    /// clears only in a window where Control met its SLO (zero-arrival
    /// windows carry no signal and hold both the latch and the streak).
    pub fn judge_classes(
        &mut self,
        now: Cycles,
        control_arrived: u64,
        control_delivered: u64,
        bulk_delivered: u64,
        control_p99: Nanos,
        slo: Nanos,
    ) {
        let c_arr = control_arrived.saturating_sub(self.class_last_control_arrived);
        let c_del = control_delivered.saturating_sub(self.class_last_control_delivered);
        let b_del = bulk_delivered.saturating_sub(self.class_last_bulk_delivered);
        self.class_last_control_arrived = control_arrived;
        self.class_last_control_delivered = control_delivered;
        self.class_last_bulk_delivered = bulk_delivered;
        if c_arr == 0 {
            return;
        }
        let violated = c_del == 0 || control_p99 > slo;
        if b_del > 0 && violated {
            self.class_violation_streak = self.class_violation_streak.saturating_add(1);
            if self.class_violation_streak >= self.cfg.inversion_windows.max(1)
                && !self.class_inversion_latched
            {
                self.class_inversion_latched = true;
                self.events.push(ObsEvent {
                    at: now,
                    cpu: self.cpu,
                    kind: ObsEventKind::PriorityInversion { arrived: c_arr },
                });
            }
        } else {
            // The streak is consecutive by definition; the latch only
            // clears on a window where Control actually met its SLO
            // (violated-but-nothing-served is livelock, not recovery).
            self.class_violation_streak = 0;
            if !violated {
                self.class_inversion_latched = false;
            }
        }
    }

    /// Per-flow starvation watch: a flow with arrivals but zero
    /// deliveries across [`ObserveConfig::starve_windows`] consecutive
    /// windows fires one `FlowStarved` event (latched per flow).
    fn watch_flows(&mut self, now: Cycles, reg: &FlowRegistry) {
        let n = self.slot_arrived.len().min(reg.capacity());
        for i in 0..n {
            let Some(s) = reg.slot(i) else { continue };
            let arr = s.arrived.saturating_sub(self.slot_arrived[i]);
            let del = s.delivered.saturating_sub(self.slot_delivered[i]);
            self.slot_arrived[i] = s.arrived;
            self.slot_delivered[i] = s.delivered;
            if del > 0 {
                self.slot_starved[i] = 0;
                continue;
            }
            if arr == 0 {
                continue;
            }
            self.slot_starved[i] = self.slot_starved[i].saturating_add(1);
            if self.slot_starved[i] >= self.cfg.starve_windows.max(1) && !self.slot_fired[i] {
                self.slot_fired[i] = true;
                self.events.push(ObsEvent {
                    at: now,
                    cpu: self.cpu,
                    kind: ObsEventKind::FlowStarved {
                        flow_hash: s.hash,
                        windows: self.slot_starved[i],
                    },
                });
            }
        }
    }
}

/// Queue depths along the forwarding path at one sampling instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDepths {
    /// Frames waiting in receive rings (summed over interfaces).
    pub rx_ring: usize,
    /// Packets in `ipintrq` (unmodified kernel).
    pub ipintrq: usize,
    /// Packets queued to the screend process.
    pub screend_q: usize,
    /// Packets in output interface queues (summed over interfaces).
    pub out_ifq: usize,
    /// Datagrams in the local socket buffer (end-system mode).
    pub socket_q: usize,
}

/// The recorded telemetry time-series. All series sample at the same
/// instants, so row `i` of each describes the same moment.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    /// Which CPU's kernel recorded this timeline (every series belongs to
    /// one CPU; SMP trials keep one `Timeline` per CPU).
    cpu: CpuId,
    interval_ticks: u32,
    max_samples: usize,
    ticks_since_sample: u32,
    last_ledger: CycleLedger,
    last_taken: u64,
    last_at: Cycles,
    /// Per-class CPU share over each sampling interval, indexed by
    /// [`CpuClass::index`] ([`CpuClass::ALL`] order). Each sample's nine
    /// values sum to 1 — the ledger's conservation, interval by interval.
    pub cpu_share: [TimeSeries; CpuClass::COUNT],
    /// Receive-ring depth (frames, summed over interfaces).
    pub rx_ring: TimeSeries,
    /// `ipintrq` depth.
    pub ipintrq: TimeSeries,
    /// Screend queue depth.
    pub screend_q: TimeSeries,
    /// Output interface queue depth (summed over interfaces).
    pub out_ifq: TimeSeries,
    /// Local socket buffer depth.
    pub socket_q: TimeSeries,
    /// The interrupt gate's inhibit-reason bitmask
    /// ([`InhibitReason::bit_index`](livelock_core::gate::InhibitReason::bit_index)
    /// gives each bit); 0 = gate open.
    pub gate_bits: TimeSeries,
    /// Hardware interrupts per second over each sampling interval.
    pub intr_rate: TimeSeries,
    /// Deliveries per traffic class over each sampling interval, indexed
    /// by [`TrafficClass::index`](livelock_net::TrafficClass::index)
    /// (`control`, `realtime`, `bulk`). All-zero when flow
    /// classification is off.
    pub class_delivered: [TimeSeries; 3],
    last_class_delivered: [u64; 3],
}

impl Timeline {
    /// Creates an empty timeline for the given sampler configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Timeline {
            cpu: CpuId(0),
            interval_ticks: cfg.interval_ticks.max(1),
            max_samples: cfg.max_samples.max(2),
            ticks_since_sample: 0,
            last_ledger: CycleLedger::new(),
            last_taken: 0,
            last_at: Cycles::ZERO,
            cpu_share: Default::default(),
            rx_ring: TimeSeries::new(),
            ipintrq: TimeSeries::new(),
            screend_q: TimeSeries::new(),
            out_ifq: TimeSeries::new(),
            socket_q: TimeSeries::new(),
            gate_bits: TimeSeries::new(),
            intr_rate: TimeSeries::new(),
            class_delivered: Default::default(),
            last_class_delivered: [0; 3],
        }
    }

    /// Tags the timeline with the CPU whose kernel records it.
    pub fn set_cpu(&mut self, cpu: CpuId) {
        self.cpu = cpu;
    }

    /// The CPU whose kernel recorded this timeline.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Clock-tick hook: returns `true` when a sample is due (and resets
    /// the tick countdown).
    pub fn on_tick(&mut self) -> bool {
        self.ticks_since_sample += 1;
        if self.ticks_since_sample >= self.interval_ticks {
            self.ticks_since_sample = 0;
            true
        } else {
            false
        }
    }

    /// The effective sampling interval in ticks (doubles on decimation).
    pub fn interval_ticks(&self) -> u32 {
        self.interval_ticks
    }

    /// Number of samples recorded (per series).
    pub fn len(&self) -> usize {
        self.gate_bits.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.gate_bits.is_empty()
    }

    /// Records one sample at time `now`: per-class CPU shares over the
    /// interval since the previous sample (from the conserved `ledger`),
    /// queue depths, gate state, the interrupt rate derived from the
    /// controller's cumulative `taken` count, and per-traffic-class
    /// delivery deltas from the cumulative `class_delivered` counters
    /// (all-zero when classification is off).
    pub fn sample(
        &mut self,
        now: Cycles,
        ledger: CycleLedger,
        taken: u64,
        depths: QueueDepths,
        gate_bits: u8,
        class_delivered: [u64; 3],
        freq: Freq,
    ) {
        let delta = ledger.since(&self.last_ledger);
        let shares = delta.shares();
        for (series, share) in self.cpu_share.iter_mut().zip(shares) {
            series.push(now, share);
        }
        self.rx_ring.push(now, depths.rx_ring as f64);
        self.ipintrq.push(now, depths.ipintrq as f64);
        self.screend_q.push(now, depths.screend_q as f64);
        self.out_ifq.push(now, depths.out_ifq as f64);
        self.socket_q.push(now, depths.socket_q as f64);
        self.gate_bits.push(now, f64::from(gate_bits));
        let span_secs = freq.secs_from_cycles(now - self.last_at);
        let rate = if span_secs > 0.0 {
            (taken - self.last_taken) as f64 / span_secs
        } else {
            0.0
        };
        self.intr_rate.push(now, rate);
        for (i, s) in self.class_delivered.iter_mut().enumerate() {
            let delta = class_delivered[i].saturating_sub(self.last_class_delivered[i]);
            s.push(now, delta as f64);
        }

        self.last_ledger = ledger;
        self.last_taken = taken;
        self.last_class_delivered = class_delivered;
        self.last_at = now;
        if self.len() >= self.max_samples {
            self.decimate();
        }
    }

    /// Halves every series and doubles the sampling interval (bounded
    /// memory for unbounded runs).
    fn decimate(&mut self) {
        for s in &mut self.cpu_share {
            s.decimate();
        }
        for s in [
            &mut self.rx_ring,
            &mut self.ipintrq,
            &mut self.screend_q,
            &mut self.out_ifq,
            &mut self.socket_q,
            &mut self.gate_bits,
            &mut self.intr_rate,
        ] {
            s.decimate();
        }
        for s in &mut self.class_delivered {
            s.decimate();
        }
        self.interval_ticks = self.interval_ticks.saturating_mul(2);
    }

    /// Renders the timeline as CSV: one row per sample, a `time_us`
    /// column, the nine per-class share columns (labelled by
    /// [`CpuClass::label`]), the five queue depths, the gate bitmask,
    /// the interrupt rate, and the three per-traffic-class delivery
    /// columns. Output is deterministic: same samples, same bytes.
    pub fn to_csv(&self, freq: Freq) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time_us");
        for c in CpuClass::ALL {
            let _ = write!(out, ",{}", c.label());
        }
        out.push_str(",rx_ring,ipintrq,screend_q,out_ifq,socket_q,gate_bits,intr_rate_hz");
        out.push_str(",delivered_control,delivered_realtime,delivered_bulk\n");
        for i in 0..self.len() {
            let (at, _) = self.gate_bits.points()[i];
            let _ = write!(out, "{:.1}", freq.nanos_from_cycles(at).as_micros_f64());
            for s in &self.cpu_share {
                let _ = write!(out, ",{:.6}", s.points()[i].1);
            }
            for s in [
                &self.rx_ring,
                &self.ipintrq,
                &self.screend_q,
                &self.out_ifq,
                &self.socket_q,
                &self.gate_bits,
            ] {
                let _ = write!(out, ",{:.0}", s.points()[i].1);
            }
            let _ = write!(out, ",{:.1}", self.intr_rate.points()[i].1);
            for s in &self.class_delivered {
                let _ = write!(out, ",{:.0}", s.points()[i].1);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_at(rx: u64, idle: u64) -> CycleLedger {
        let mut l = CycleLedger::new();
        l.charge(CpuClass::RxIntr, Cycles::new(rx));
        l.charge(CpuClass::Idle, Cycles::new(idle));
        l
    }

    #[test]
    fn on_tick_respects_interval() {
        let mut tl = Timeline::new(TelemetryConfig {
            interval_ticks: 3,
            max_samples: 64,
        });
        let due: Vec<bool> = (0..6).map(|_| tl.on_tick()).collect();
        assert_eq!(due, [false, false, true, false, false, true]);
    }

    #[test]
    fn shares_cover_each_interval_exactly() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig::default());
        tl.sample(
            Cycles::new(1_000),
            ledger_at(600, 400),
            10,
            QueueDepths::default(),
            0,
            [0; 3],
            freq,
        );
        // Second interval: 1000 more cycles, all rx.
        tl.sample(
            Cycles::new(2_000),
            ledger_at(1_600, 400),
            30,
            QueueDepths::default(),
            0b101,
            [0; 3],
            freq,
        );
        let rx = &tl.cpu_share[CpuClass::RxIntr.index()];
        assert_eq!(rx.points()[0].1, 0.6);
        assert_eq!(rx.points()[1].1, 1.0);
        let idle = &tl.cpu_share[CpuClass::Idle.index()];
        assert_eq!(idle.points()[1].1, 0.0);
        assert_eq!(tl.gate_bits.points()[1].1, 5.0);
        // 20 interrupts over 1000 cycles at 100 MHz = 10 us → 2e6/s.
        assert!((tl.intr_rate.points()[1].1 - 2_000_000.0).abs() < 1.0);
        // Every sample's shares sum to 1.
        for i in 0..tl.len() {
            let sum: f64 = tl.cpu_share.iter().map(|s| s.points()[i].1).sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn decimation_bounds_memory_and_doubles_interval() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig {
            interval_ticks: 1,
            max_samples: 8,
        });
        for i in 1..=40u64 {
            tl.sample(
                Cycles::new(i * 1_000),
                ledger_at(i * 1_000, 0),
                i,
                QueueDepths::default(),
                0,
                [0; 3],
                freq,
            );
        }
        assert!(tl.len() <= 8, "bounded: {} samples", tl.len());
        assert!(tl.interval_ticks() > 1, "interval doubled");
        for s in &tl.cpu_share {
            assert_eq!(s.len(), tl.len(), "series stay in lockstep");
        }
    }

    #[test]
    fn detector_onset_and_recovery_with_hysteresis() {
        let cfg = ObserveConfig {
            window_ticks: 1,
            min_window_arrivals: 10,
            ..Default::default()
        };
        let mut d = LivelockDetector::new(cfg);
        // Healthy loaded window: no event.
        d.on_tick(Cycles::new(1), 100, 90, 0, false, None);
        assert!(d.events().is_empty());
        // Collapse: 2 of 200 delivered (1% < 5%) -> onset.
        d.on_tick(Cycles::new(2), 300, 92, 0, false, None);
        assert!(d.is_livelocked());
        // Partial improvement (10%, still under the 25% recovery bar):
        // hysteresis holds the livelocked state, no event flapping.
        d.on_tick(Cycles::new(3), 500, 112, 0, false, None);
        assert!(d.is_livelocked());
        assert_eq!(d.events().len(), 1);
        // Real recovery (50%).
        d.on_tick(Cycles::new(4), 700, 212, 0, false, None);
        assert!(!d.is_livelocked());
        let evs = d.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].kind,
            ObsEventKind::LivelockOnset {
                arrived: 200,
                delivered: 2
            }
        );
        assert_eq!(evs[0].at, Cycles::new(2), "onset carries its window's close");
        assert!(matches!(evs[1].kind, ObsEventKind::Recovery { .. }));
        assert!(d.events().is_empty(), "take_events drains");
    }

    #[test]
    fn detector_idle_windows_carry_no_signal_and_end_episodes() {
        let cfg = ObserveConfig {
            window_ticks: 1,
            min_window_arrivals: 10,
            ..Default::default()
        };
        let mut d = LivelockDetector::new(cfg);
        // Idle window: never an onset.
        d.on_tick(Cycles::new(1), 5, 0, 0, false, None);
        assert!(!d.is_livelocked());
        // Livelock, then arrivals stop: the drained window recovers.
        d.on_tick(Cycles::new(2), 300, 1, 0, false, None);
        assert!(d.is_livelocked());
        d.on_tick(Cycles::new(3), 301, 1, 0, false, None);
        assert!(!d.is_livelocked(), "no input pressure means no livelock");
    }

    #[test]
    fn detector_priority_inversion_latches_per_episode() {
        let cfg = ObserveConfig {
            window_ticks: 1,
            min_window_arrivals: 10,
            ..Default::default()
        };
        let mut d = LivelockDetector::new(cfg);
        // User starved two loaded windows running: one event.
        d.on_tick(Cycles::new(1), 100, 90, 0, true, None);
        d.on_tick(Cycles::new(2), 200, 180, 0, true, None);
        // Progress resumes, then stalls again: a second episode.
        d.on_tick(Cycles::new(3), 300, 270, 7, true, None);
        d.on_tick(Cycles::new(4), 400, 360, 7, true, None);
        let inv: Vec<_> = d
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ObsEventKind::PriorityInversion { .. }))
            .collect();
        assert_eq!(inv.len(), 2);
        assert_eq!(inv[0].at, Cycles::new(1));
        assert_eq!(inv[1].at, Cycles::new(4));
        // Without a configured user process the signal is meaningless.
        let mut d2 = LivelockDetector::new(cfg);
        d2.on_tick(Cycles::new(1), 100, 90, 0, false, None);
        assert!(d2.events().is_empty());
    }

    #[test]
    fn user_inversion_latch_edge_progress_resuming_exactly_at_a_tick() {
        let cfg = ObserveConfig {
            window_ticks: 1,
            min_window_arrivals: 10,
            ..Default::default()
        };
        let mut d = LivelockDetector::new(cfg);
        // Loaded, user starved: episode opens, one event.
        d.on_tick(Cycles::new(1), 100, 90, 0, true, None);
        // An *idle* starved window holds the latch: it neither clears
        // the episode nor fires a second event.
        d.on_tick(Cycles::new(2), 105, 95, 0, true, None);
        // User progress lands exactly on the window-closing tick: that
        // single chunk is enough to end the episode at this boundary.
        d.on_tick(Cycles::new(3), 205, 185, 1, true, None);
        // The very next starved loaded window is a fresh episode.
        d.on_tick(Cycles::new(4), 305, 275, 1, true, None);
        let inv: Vec<_> = d
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ObsEventKind::PriorityInversion { .. }))
            .collect();
        assert_eq!(inv.len(), 2, "idle hold, boundary unlatch, re-latch");
        assert_eq!(inv[0].at, Cycles::new(1));
        assert_eq!(inv[1].at, Cycles::new(4));
    }

    /// Drives [`LivelockDetector::judge_classes`] with per-window deltas
    /// (the detector wants cumulative counters, so this accumulates).
    struct ClassJudge {
        d: LivelockDetector,
        arr: u64,
        c_del: u64,
        b_del: u64,
        t: u64,
    }

    impl ClassJudge {
        fn new() -> Self {
            ClassJudge {
                d: LivelockDetector::new(ObserveConfig::default()),
                arr: 0,
                c_del: 0,
                b_del: 0,
                t: 0,
            }
        }

        fn window(&mut self, c_arr: u64, c_del: u64, b_del: u64, p99_us: u64) {
            self.arr += c_arr;
            self.c_del += c_del;
            self.b_del += b_del;
            self.t += 1;
            let slo = Nanos::new(5_000_000);
            let p99 = Nanos::new(p99_us * 1_000);
            self.d
                .judge_classes(Cycles::new(self.t), self.arr, self.c_del, self.b_del, p99, slo);
        }

        fn inversions(&self) -> Vec<Cycles> {
            self.d
                .events()
                .iter()
                .filter(|e| matches!(e.kind, ObsEventKind::PriorityInversion { .. }))
                .map(|e| e.at)
                .collect()
        }
    }

    #[test]
    fn class_judge_slo_breach_needs_persistence_and_fires_once_per_episode() {
        let mut j = ClassJudge::new();
        // One violated window (Control over SLO, Bulk served) is fault
        // noise: no event yet.
        j.window(10, 10, 5, 9_000);
        assert!(j.inversions().is_empty());
        // The second consecutive violated window is inversion.
        j.window(10, 10, 5, 9_000);
        assert_eq!(j.inversions(), vec![Cycles::new(2)]);
        // The episode persists: no re-fire while still violated.
        j.window(10, 10, 5, 9_000);
        j.window(10, 2, 5, 12_000);
        assert_eq!(j.inversions().len(), 1, "one shot per episode");
        // Control meets its SLO: the episode ends...
        j.window(10, 10, 5, 1_000);
        // ...and a fresh persistent breach is a second episode.
        j.window(10, 10, 5, 9_000);
        j.window(10, 10, 5, 9_000);
        assert_eq!(j.inversions(), vec![Cycles::new(2), Cycles::new(7)]);
    }

    #[test]
    fn class_judge_starved_outright_is_a_violation_without_any_slo() {
        let mut j = ClassJudge::new();
        // Control arrives, none delivered, Bulk still served: violated
        // even with a zero p99 reading (no samples to measure).
        j.window(10, 0, 5, 0);
        j.window(10, 0, 5, 0);
        assert_eq!(j.inversions().len(), 1);
    }

    #[test]
    fn class_judge_zero_arrival_windows_hold_latch_and_streak() {
        let mut j = ClassJudge::new();
        j.window(10, 10, 5, 9_000);
        // A zero-arrival window carries no signal: the streak survives
        // it, so the next violated window completes the persistence bar.
        j.window(0, 0, 5, 0);
        j.window(10, 10, 5, 9_000);
        assert_eq!(j.inversions().len(), 1, "streak held across idle window");
        // Once latched, zero-arrival windows do not end the episode.
        j.window(0, 0, 0, 0);
        j.window(10, 10, 5, 9_000);
        j.window(10, 10, 5, 9_000);
        assert_eq!(j.inversions().len(), 1, "latch held across idle window");
    }

    #[test]
    fn class_judge_bulk_unserved_resets_streak_but_not_latch() {
        let mut j = ClassJudge::new();
        // Violated but Bulk unserved too: that is livelock, not
        // inversion — the streak resets.
        j.window(10, 0, 5, 0);
        j.window(10, 0, 0, 0);
        j.window(10, 0, 5, 0);
        assert!(j.inversions().is_empty(), "streak reset by bulk-dry window");
        j.window(10, 0, 5, 0);
        assert_eq!(j.inversions().len(), 1);
        // A bulk-dry violated window does not end the episode either:
        // recovery requires Control actually meeting its SLO.
        j.window(10, 0, 0, 0);
        j.window(10, 0, 5, 0);
        j.window(10, 0, 5, 0);
        assert_eq!(j.inversions().len(), 1, "latch survives bulk-dry window");
    }

    #[test]
    fn detector_flow_starvation_fires_once_per_flow() {
        use crate::flows::FlowRegistry;
        use livelock_net::FlowKey;
        let key = |p: u16| FlowKey {
            src_ip: 1,
            dst_ip: 2,
            proto: 17,
            src_port: p,
            dst_port: 9,
        };
        let cfg = ObserveConfig {
            window_ticks: 1,
            min_window_arrivals: 1,
            starve_windows: 2,
            flow_slots: 8,
            ..Default::default()
        };
        let mut d = LivelockDetector::new(cfg);
        let mut reg = FlowRegistry::new(8);
        let freq = Freq::mhz(100);
        for w in 1..=4u64 {
            // Flow 1 arrives and is served; flow 2 arrives and never is.
            reg.record_arrival(Some(key(1)));
            reg.record_delivery(Some(key(1)), Cycles::ZERO, Cycles::new(w), freq);
            reg.record_arrival(Some(key(2)));
            d.on_tick(Cycles::new(w * 100), w * 2, w, 0, false, Some(&reg));
        }
        let starved: Vec<_> = d
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                ObsEventKind::FlowStarved { flow_hash, windows } => Some((flow_hash, windows)),
                _ => None,
            })
            .collect();
        assert_eq!(starved.len(), 1, "one event per starved flow");
        assert_eq!(starved[0].0, crate::flows::flow_hash(key(2)));
        assert_eq!(starved[0].1, 2);
    }

    #[test]
    fn obs_event_json_has_stable_field_order() {
        let freq = Freq::mhz(100);
        let ev = ObsEvent {
            at: Cycles::new(5_000),
            cpu: CpuId(1),
            kind: ObsEventKind::LivelockOnset {
                arrived: 160,
                delivered: 3,
            },
        };
        assert_eq!(
            ev.to_json(freq),
            "{\"at_cycles\":5000,\"at_us\":50.0,\"cpu\":1,\
             \"kind\":\"livelock-onset\",\"arrived\":160,\"delivered\":3}"
        );
        let ev = ObsEvent {
            at: Cycles::new(100),
            cpu: CpuId(0),
            kind: ObsEventKind::FlowStarved {
                flow_hash: 42,
                windows: 4,
            },
        };
        assert!(ev.to_json(freq).ends_with("\"flow_hash\":42,\"windows\":4}"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let freq = Freq::mhz(100);
        let mut tl = Timeline::new(TelemetryConfig::default());
        tl.sample(
            Cycles::new(100_000),
            ledger_at(50_000, 50_000),
            5,
            QueueDepths {
                rx_ring: 3,
                ..QueueDepths::default()
            },
            1,
            [0; 3],
            freq,
        );
        let csv = tl.to_csv(freq);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_us,rx_intr,"));
        assert!(header.ends_with("delivered_control,delivered_realtime,delivered_bulk"));
        assert_eq!(lines.count(), 1);
        assert!(csv.contains(",3,0,0,0,0,1,"), "depths and gate bits");
    }
}
