#![warn(missing_docs)]

//! The simulated router kernel: the paper's system-under-test.
//!
//! This crate wires the machine model (`livelock-machine`), the network
//! substrate (`livelock-net`) and the livelock-avoidance library
//! (`livelock-core`) into the two kernels the paper measures:
//!
//! - the **unmodified 4.2BSD path** (Figure 6-2): receive interrupts at
//!   `SPLIMP` with batching, a bounded `ipintrq`, the IP forwarding layer in
//!   a network software interrupt at `SPLNET`, bounded per-interface output
//!   queues, and transmit-completion interrupts — the design that livelocks;
//! - the **modified path** (§6.4): interrupt stubs that only schedule a
//!   kernel polling thread, round-robin callbacks with packet quotas,
//!   process-to-completion (no `ipintrq`), queue-state feedback around the
//!   screend queue, and the §7 CPU-cycle limiter.
//!
//! Both kernels can route through the user-mode `screend` packet-filter
//! process, and both can host a compute-bound user process for the
//! Figure 7-1 experiment. [`experiment`] runs the paper's trials: flood the
//! router with minimum-size UDP packets at a nominal rate, count packets
//! transmitted on the output wire, and report averaged rates.
//!
//! # Examples
//!
//! ```
//! use livelock_kernel::config::KernelConfig;
//! use livelock_kernel::experiment::{run_trial, TrialSpec};
//!
//! // A light load on the unmodified kernel: no loss, delivery == offer.
//! let spec = TrialSpec {
//!     rate_pps: 500.0,
//!     n_packets: 500,
//!     ..TrialSpec::new(KernelConfig::builder().build())
//! };
//! let r = run_trial(&spec);
//! assert!(r.delivered_pps > 450.0);
//! ```

pub mod config;
pub mod experiment;
pub mod flows;
pub mod par;
pub mod router;
pub mod stats;
pub mod telemetry;

pub use config::{
    ClassifyConfig, FeedbackConfig, KernelConfig, KernelConfigBuilder, Mode, PolledConfig,
    ScreendConfig, ShedConfig, Topology,
};
pub use experiment::{
    run_chaos_trial, run_trial, run_trial_traced, sweep, ChaosReport, ClassSummary, CpuStats,
    SweepResult, TrialResult, TrialSpec,
};
pub use flows::{flow_hash, FlowRegistry, FlowStats};
pub use par::{default_jobs, par_map, Parallelism};
pub use router::{tag_label, RouterKernel};
pub use stats::{
    ClassCounters, ClassStats, DropReason, DropStats, FaultStats, KernelStats, LatencyStats, Stage,
};
pub use telemetry::{
    LivelockDetector, ObsEvent, ObsEventKind, ObserveConfig, QueueDepths, TelemetryConfig, Timeline,
};
