//! Fixture-based self-tests: each rule must flag its known-bad snippet
//! and stay quiet on the known-good one, with the fixtures linted *as if*
//! they lived at representative workspace paths. The fixtures under
//! `crates/lint/fixtures/` are never scanned by a workspace run (the lint
//! crate skips itself), so they can contain violations freely.

use lint::files::FileInfo;
use lint::rules::all_rules;
use lint::{lint_source, FileLint};

fn lint_at(path: &str, src: &str) -> FileLint {
    let info = FileInfo::classify(path).unwrap_or_else(|| panic!("unclassifiable path {path}"));
    lint_source(&info, src, &all_rules())
}

fn rules_hit(fl: &FileLint) -> Vec<&str> {
    let mut rules: Vec<&str> = fl.active.iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

const DETERMINISM_BAD: &str = include_str!("../fixtures/determinism_bad.rs");
const DETERMINISM_GOOD: &str = include_str!("../fixtures/determinism_good.rs");
const DROPS_BAD: &str = include_str!("../fixtures/drops_bad.rs");
const DROPS_GOOD: &str = include_str!("../fixtures/drops_good.rs");
const INTERRUPT_BAD: &str = include_str!("../fixtures/interrupt_bad.rs");
const INTERRUPT_GOOD: &str = include_str!("../fixtures/interrupt_good.rs");
const LEDGER_BAD: &str = include_str!("../fixtures/ledger_bad.rs");
const LEDGER_GOOD: &str = include_str!("../fixtures/ledger_good.rs");
const PANICS_BAD: &str = include_str!("../fixtures/panics_bad.rs");
const PANICS_GOOD: &str = include_str!("../fixtures/panics_good.rs");
const DEPRECATED_BAD: &str = include_str!("../fixtures/deprecated_bad.rs");
const DEPRECATED_GOOD: &str = include_str!("../fixtures/deprecated_good.rs");
const SUPPRESSIONS: &str = include_str!("../fixtures/suppressions.rs");
const STRINGS_AND_COMMENTS: &str = include_str!("../fixtures/strings_and_comments.rs");

#[test]
fn determinism_bad_is_flagged_good_is_clean() {
    let bad = lint_at("crates/sim/src/fixture.rs", DETERMINISM_BAD);
    assert_eq!(rules_hit(&bad), vec!["determinism"]);
    assert!(
        bad.active.len() >= 5,
        "HashMap, HashSet, Instant::now, spawn, sleep: {:?}",
        bad.active
    );
    let good = lint_at("crates/sim/src/fixture.rs", DETERMINISM_GOOD);
    assert!(good.active.is_empty(), "{:?}", good.active);
}

#[test]
fn determinism_collections_scope_is_library_code_in_deterministic_crates() {
    // A bench binary may use HashMap; wall-clock time is still banned there.
    let bench = lint_at("crates/bench/src/bin/figures.rs", DETERMINISM_BAD);
    assert!(
        !bench
            .active
            .iter()
            .any(|f| f.snippet == "HashMap" || f.snippet == "HashSet"),
        "{:?}",
        bench.active
    );
    assert!(
        bench.active.iter().any(|f| f.snippet.contains("Instant")),
        "wall-clock time is nondeterministic everywhere: {:?}",
        bench.active
    );
    // The parallel executor and the perf harness are the sanctioned
    // thread/time users.
    let par = lint_at("crates/kernel/src/par.rs", DETERMINISM_BAD);
    assert!(
        !par.active.iter().any(|f| f.snippet.contains("thread")),
        "{:?}",
        par.active
    );
}

#[test]
fn drop_accounting_bad_is_flagged_good_is_clean() {
    let bad = lint_at("crates/kernel/src/sched.rs", DROPS_BAD);
    assert_eq!(rules_hit(&bad), vec!["drop-accounting"]);
    assert_eq!(bad.active.len(), 5, "{:?}", bad.active);
    let good = lint_at("crates/kernel/src/sched.rs", DROPS_GOOD);
    assert!(
        good.active.is_empty(),
        "reads and record_drop are fine: {:?}",
        good.active
    );
}

#[test]
fn drop_accounting_exempts_only_the_accounting_module() {
    let stats = lint_at("crates/kernel/src/stats.rs", DROPS_BAD);
    assert!(stats.active.is_empty(), "{:?}", stats.active);
}

#[test]
fn interrupt_discipline_bad_is_flagged_good_is_clean() {
    for ctx in ["crates/machine/src/intr.rs", "crates/core/src/driver.rs"] {
        let bad = lint_at(ctx, INTERRUPT_BAD);
        assert_eq!(rules_hit(&bad), vec!["interrupt-discipline"], "at {ctx}");
        let good = lint_at(ctx, INTERRUPT_GOOD);
        assert!(good.active.is_empty(), "at {ctx}: {:?}", good.active);
    }
}

#[test]
fn interrupt_discipline_only_binds_interrupt_context_files() {
    // The same upper-layer calls are the whole point elsewhere.
    let elsewhere = lint_at("crates/kernel/src/router/forwarding.rs", INTERRUPT_BAD);
    assert!(
        !rules_hit(&elsewhere).contains(&"interrupt-discipline"),
        "{:?}",
        elsewhere.active
    );
}

#[test]
fn ledger_discipline_bad_is_flagged_good_is_clean() {
    let bad = lint_at("crates/kernel/src/telemetry.rs", LEDGER_BAD);
    assert_eq!(rules_hit(&bad), vec!["ledger-discipline"]);
    assert_eq!(bad.active.len(), 2, "method and path form: {:?}", bad.active);
    let good = lint_at("crates/kernel/src/telemetry.rs", LEDGER_GOOD);
    assert!(good.active.is_empty(), "{:?}", good.active);
    // At a commit point the same calls are sanctioned.
    let commit = lint_at("crates/machine/src/cpu.rs", LEDGER_BAD);
    assert!(commit.active.is_empty(), "{:?}", commit.active);
}

#[test]
fn panic_freedom_bad_is_flagged_good_is_clean() {
    let bad = lint_at("crates/net/src/fixture.rs", PANICS_BAD);
    assert_eq!(rules_hit(&bad), vec!["panic-freedom"]);
    assert_eq!(
        bad.active.len(),
        4,
        "unwrap, expect, panic!, todo!: {:?}",
        bad.active
    );
    let good = lint_at("crates/net/src/fixture.rs", PANICS_GOOD);
    assert!(
        good.active.is_empty(),
        "error returns + test-module unwrap: {:?}",
        good.active
    );
}

#[test]
fn deprecated_config_bad_is_flagged_good_is_clean() {
    let bad = lint_at("crates/bench/src/lib.rs", DEPRECATED_BAD);
    assert_eq!(rules_hit(&bad), vec!["deprecated-config"]);
    assert_eq!(bad.active.len(), 2, "{:?}", bad.active);
    let good = lint_at("crates/bench/src/lib.rs", DEPRECATED_GOOD);
    assert!(
        good.active.is_empty(),
        "builder methods share names with the old constructors: {:?}",
        good.active
    );
}

#[test]
fn suppressions_silence_with_reason_and_fail_without() {
    let fl = lint_at("crates/net/src/fixture.rs", SUPPRESSIONS);
    assert_eq!(fl.suppressed.len(), 1, "{:?}", fl.suppressed);
    assert_eq!(fl.suppressed[0].rule, "panic-freedom");
    // The reasonless allow and the unknown rule are findings themselves,
    // and the reasonless one suppresses nothing.
    let bad_sup = fl
        .active
        .iter()
        .filter(|f| f.rule == "bad-suppression")
        .count();
    assert_eq!(bad_sup, 2, "{:?}", fl.active);
    assert!(
        fl.active.iter().any(|f| f.rule == "panic-freedom"),
        "{:?}",
        fl.active
    );
}

#[test]
fn trigger_text_in_strings_and_comments_is_invisible() {
    // Linted at an interrupt-context path so every rule is in scope.
    let fl = lint_at("crates/machine/src/intr.rs", STRINGS_AND_COMMENTS);
    assert!(fl.active.is_empty(), "{:?}", fl.active);
    assert!(fl.suppressed.is_empty(), "{:?}", fl.suppressed);
}
