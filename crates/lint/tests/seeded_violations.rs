//! Seed-and-verify: each of the new rules (20, 21, 22) fires its exact
//! exit code on a planted violation, and a pristine copy exits 0.
//!
//! The harness copies the real workspace's sources into a scratch tree
//! under the system temp dir, plants exactly one violation, lints the
//! scratch tree through the library API, and asserts on
//! `report::exit_code` — the same value the `simlint` process exits
//! with. Copying the live tree (rather than a synthetic fixture) keeps
//! the exit-code registry's liveness cross-checks satisfied, so a
//! seeded run fails for the seeded reason and nothing else.

use std::fs;
use std::path::{Path, PathBuf};

use lint::baseline::Baseline;
use lint::{report, rules};

/// The real workspace root (two levels up from this crate).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

/// Copies everything the linter scans (plus `scripts/ci.sh` and the
/// baseline) into a fresh scratch tree and returns its path.
fn scratch_copy(tag: &str) -> PathBuf {
    let root = repo_root();
    let dst = std::env::temp_dir().join(format!(
        "simlint-seed-{}-{tag}",
        std::process::id()
    ));
    if dst.exists() {
        fs::remove_dir_all(&dst).expect("stale scratch tree removed");
    }
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir).expect("crates/ readable") {
        let krate = entry.expect("dir entry").path();
        if !krate.is_dir() {
            continue;
        }
        let name = krate.file_name().unwrap_or_default().to_string_lossy().to_string();
        for sub in ["src", "tests", "benches"] {
            copy_rs_tree(
                &krate.join(sub),
                &dst.join("crates").join(&name).join(sub),
            );
        }
    }
    copy_rs_tree(&root.join("tests"), &dst.join("tests"));
    copy_rs_tree(&root.join("examples"), &dst.join("examples"));
    fs::create_dir_all(dst.join("scripts")).expect("scripts dir");
    fs::copy(root.join("scripts/ci.sh"), dst.join("scripts/ci.sh")).expect("ci.sh copied");
    fs::copy(
        root.join("crates/lint/baseline.txt"),
        dst.join("crates/lint/baseline.txt"),
    )
    .expect("baseline copied");
    dst
}

fn copy_rs_tree(src: &Path, dst: &Path) {
    if !src.is_dir() {
        return;
    }
    fs::create_dir_all(dst).expect("scratch subdir");
    for entry in fs::read_dir(src).expect("source dir readable") {
        let p = entry.expect("dir entry").path();
        let name = p.file_name().unwrap_or_default().to_owned();
        if p.is_dir() {
            copy_rs_tree(&p, &dst.join(name));
        } else if p.extension().is_some_and(|e| e == "rs" || e == "txt") {
            fs::copy(&p, dst.join(name)).expect("file copied");
        }
    }
}

/// Lints a scratch tree and returns the process exit code it maps to.
fn lint_exit(root: &Path) -> (i32, Vec<String>) {
    let baseline =
        Baseline::load(&root.join("crates/lint/baseline.txt")).expect("baseline loads");
    let result = lint::lint_workspace(root, &baseline).expect("scan succeeds");
    let rules_hit: Vec<String> = result.fresh.iter().map(|f| f.rule.clone()).collect();
    (report::exit_code(&result), rules_hit)
}

fn append(path: &Path, text: &str) {
    let mut src = fs::read_to_string(path).expect("seed target readable");
    src.push_str(text);
    fs::write(path, src).expect("seed written");
}

#[test]
fn pristine_copy_is_clean() {
    let dir = scratch_copy("clean");
    let (code, rules_hit) = lint_exit(&dir);
    assert_eq!(code, 0, "pristine scratch tree must lint clean: {rules_hit:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_unit_violation_exits_20() {
    let dir = scratch_copy("units");
    append(
        &dir.join("crates/sim/src/lib.rs"),
        "\npub fn seeded_unit_mix(t_ns: u64, t_cycles: u64) -> u64 { t_ns + t_cycles }\n",
    );
    let (code, rules_hit) = lint_exit(&dir);
    assert_eq!(rules_hit, vec!["unit-discipline".to_string()], "exactly the seeded finding");
    assert_eq!(code, rules::EXIT_UNIT_DISCIPLINE);
    assert_eq!(code, 20);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_raw_exit_code_exits_21() {
    let dir = scratch_copy("exitcodes");
    append(
        &dir.join("crates/bench/src/bin/figures.rs"),
        "\nfn seeded_raw_exit() { std::process::exit(42); }\n",
    );
    let (code, rules_hit) = lint_exit(&dir);
    assert_eq!(
        rules_hit,
        vec!["exit-code-registry".to_string()],
        "exactly the seeded finding"
    );
    assert_eq!(code, rules::EXIT_CODE_REGISTRY);
    assert_eq!(code, 21);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn unregistered_ci_exit_also_exits_21() {
    let dir = scratch_copy("cish");
    let ci = dir.join("scripts/ci.sh");
    let mut text = fs::read_to_string(&ci).expect("ci.sh readable");
    text.push_str("\nfalse || exit 99\n");
    fs::write(&ci, text).expect("ci.sh seeded");
    let (code, rules_hit) = lint_exit(&dir);
    assert_eq!(rules_hit, vec!["exit-code-registry".to_string()]);
    assert_eq!(code, 21);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn seeded_stale_baseline_exits_22() {
    let dir = scratch_copy("stale");
    append(
        &dir.join("crates/lint/baseline.txt"),
        "panic-freedom\tcrates/sim/src/lib.rs\t.unwrap(\n",
    );
    let (code, rules_hit) = lint_exit(&dir);
    assert_eq!(rules_hit, vec!["stale-baseline".to_string()], "exactly the seeded finding");
    assert_eq!(code, rules::EXIT_STALE_BASELINE);
    assert_eq!(code, 22);
    fs::remove_dir_all(&dir).ok();
}
