//! Live-tree smoke test for the semantic model: every `fn` item in the
//! scanned workspace must land in exactly one recorded function extent.
//!
//! This is the guarantee the unit-discipline rule rides on — if the item
//! walker lost track of a function (a generics edge case, a weird
//! attribute stack), its body would silently escape dataflow analysis.
//! Parsing the real tree here means any Rust construct the workspace
//! actually uses is covered by CI, not just the fixtures.

use std::path::Path;

use lint::files;
use lint::model::{FileModel, ItemKind};
use lint::tokenizer::{tokenize, TokKind};

fn workspace_root() -> std::path::PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    files::find_workspace_root(here).expect("workspace root above crates/lint")
}

#[test]
fn every_workspace_fn_lands_in_exactly_one_extent() {
    let root = workspace_root();
    let sources = files::scan_workspace(&root).expect("scan workspace");
    assert!(sources.len() > 50, "workspace scan looks truncated: {}", sources.len());

    let mut fns_total = 0usize;
    for (info, src) in &sources {
        let lexed = tokenize(src);
        let fm = FileModel::build(info, &lexed.toks);
        fns_total += fm.fns.len();
        let macro_extents: Vec<(usize, usize)> = fm
            .items
            .iter()
            .filter(|it| it.kind == ItemKind::Macro)
            .map(|it| it.toks)
            .collect();
        for (i, t) in lexed.toks.iter().enumerate() {
            // A `fn` keyword opening an item is always followed by the
            // function's name; `fn(u8) -> u8` pointer types are not.
            let opens_item = t.is_ident("fn")
                && lexed
                    .toks
                    .get(i + 1)
                    .is_some_and(|u| u.kind == TokKind::Ident);
            if !opens_item {
                continue;
            }
            // `fn` tokens inside macro_rules! templates are patterns,
            // not items.
            if macro_extents.iter().any(|&(s, e)| s <= i && i < e) {
                continue;
            }
            let starting_here = fm.fns.iter().filter(|f| f.toks.0 == i).count();
            assert_eq!(
                starting_here, 1,
                "{}:{} fn `{}` recorded {} times",
                info.rel_path,
                t.line,
                lexed.toks[i + 1].text,
                starting_here
            );
            let covering = fm.fns.iter().filter(|f| f.toks.0 <= i && i < f.toks.1).count();
            assert!(
                covering >= 1,
                "{}:{} fn `{}` outside every extent",
                info.rel_path,
                t.line,
                lexed.toks[i + 1].text
            );
        }
    }
    assert!(fns_total > 500, "implausibly few fns recorded: {fns_total}");
}

#[test]
fn workspace_edges_cover_known_call_sites() {
    let root = workspace_root();
    let sources = files::scan_workspace(&root).expect("scan workspace");
    let wm = lint::model::WorkspaceModel::build(&sources);
    assert_eq!(wm.files.len(), sources.len());
    assert!(!wm.edges.is_empty());
    // Spot-check a stable cross-file fact: somebody in the kernel crate
    // calls the ledger's `charge`.
    let kernel_caller_charges = wm
        .edges
        .iter()
        .any(|(caller, callees)| caller.starts_with("kernel::") && callees.contains("charge"));
    assert!(kernel_caller_charges, "no kernel:: caller records a charge() call");
}
