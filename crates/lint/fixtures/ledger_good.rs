// Fixture: defining charge-like helpers and reading the ledger is fine
// anywhere; only the call to `charge` itself is restricted.
fn charge(ledger: &CycleLedger) -> Cycles {
    let spent = ledger.total();
    let per_ctx = ledger.charged_to(CtxKind::Idle);
    spent + per_ctx
}
