// Fixture: the paper-faithful interrupt handler — it only initiates
// polling and masks itself; all packet work happens in the poll thread.
fn rx_interrupt(&mut self, env: &mut Env) {
    self.mask_rx();
    env.schedule_poll(PollSource::Rx);
}
