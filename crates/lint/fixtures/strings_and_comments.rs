// Fixture: every rule's trigger text appears here, but only inside
// comments, strings, and doc examples — a lexical matcher that is not
// comment/string-aware would drown in false positives on this file.
//
// HashMap Instant::now() std::thread::spawn .unwrap() panic!("no")
// stats.rx_ring_drops += 1; ledger.charge(ctx, c); KernelConfig::unmodified()

/// Doc example, never compiled by simlint:
/// ```
/// let m = std::collections::HashMap::new();
/// let t = std::time::Instant::now();
/// q.pop().unwrap();
/// ```
fn clean() -> &'static str {
    let a = "HashMap::new() and Instant::now() in a string";
    let b = r#"stats.ipintrq_drops += 1; KernelConfig::polled()"#;
    let c = "ledger.charge(ctx, cycles); panic!(\"quoted\")";
    let _ = (a, b, c);
    /* block comment: x.unwrap(); y.expect("msg"); todo!();
       nested /* std::thread::sleep */ still a comment */
    "ok"
}
