// Fixture: error returns in library code; unwrap stays inside tests.
fn sturdy(o: Option<u8>, r: Result<u8, Error>) -> Result<u8, Error> {
    let a = o.ok_or(Error::Missing)?;
    let b = r?;
    let c = o.unwrap_or(0);
    Ok(a + b + c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
