// Fixture: library code that can kill a trial.
fn brittle(o: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = o.unwrap();
    let b = r.expect("must be ok");
    if a + b > 200 {
        panic!("overflow-ish");
    }
    todo!()
}
