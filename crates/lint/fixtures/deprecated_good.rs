// Fixture: composing configurations through the builder. The builder's
// method names overlap with the old constructor names; only the
// `KernelConfig::<ctor>` path form is deprecated.
fn configs() -> KernelConfig {
    KernelConfig::builder()
        .polled(PollQuota::default())
        .screend(true)
        .build()
}
