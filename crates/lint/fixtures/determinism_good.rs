// Fixture: the deterministic equivalents — ordered maps and simulated time.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn simulated_time(now: Cycles) -> Cycles {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    let _s: BTreeSet<u32> = BTreeSet::new();
    now
}
