// Fixture: an interrupt handler reaching into upper-layer packet
// processing — the exact coupling the paper's §6.2 redesign removes.
fn rx_interrupt(pkt: Packet) {
    let hdr = livelock_net::ipv4::Ipv4Header::parse(pkt.bytes());
    forwarding::forward(hdr);
    screend::filter(pkt);
    ipintrq.push(pkt);
}
