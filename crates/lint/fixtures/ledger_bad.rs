// Fixture: charging the cycle ledger away from the executor's commit
// points, which would double-count or orphan cycles.
fn sneak_charge(ledger: &mut CycleLedger, ctx: CtxKind, cycles: Cycles) {
    ledger.charge(ctx, cycles);
    CycleLedger::charge(ledger, ctx, cycles);
}
