// Fixture: the sanctioned mutation path, plus reads (which are fine).
fn account(stats: &mut KernelStats) -> u64 {
    stats.record_drop(DropReason::RxRing);
    stats.record_drop(DropReason::IpIntrq);
    // Reading and comparing the counters is always allowed.
    let total = stats.rx_ring_drops + stats.ipintrq_drops;
    assert!(stats.ifq_drops == 0);
    total
}
