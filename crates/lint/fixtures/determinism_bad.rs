// Fixture: every line here violates the determinism rule when linted as
// library code in a deterministic crate.
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

fn wall_clock_and_threads() {
    let t = Instant::now();
    let h = std::thread::spawn(|| t);
    let _ = thread::sleep(core::time::Duration::from_millis(1));
    let _ = h;
}
