// Fixture: calling the deprecated named constructors.
fn configs() -> (KernelConfig, KernelConfig) {
    let a = KernelConfig::unmodified();
    let b = KernelConfig::polled_screend_feedback(Quota::default());
    (a, b)
}
