// Fixture: direct pushes to the legacy drop counters, bypassing record_drop.
fn account(stats: &mut KernelStats) {
    stats.rx_ring_drops += 1;
    stats.ipintrq_drops += 2;
    stats.screend_q_drops += 1;
    stats.socket_q_drops += 1;
    stats.ifq_drops += 1;
}
