// Fixture: one well-formed suppression (silences the next line) and two
// malformed ones (missing reason / unknown rule), which are findings in
// their own right.
fn suppressed(o: Option<u8>) -> u8 {
    // simlint: allow(panic-freedom): fixture demonstrates a justified invariant
    o.unwrap()
}

// simlint: allow(panic-freedom)
fn missing_reason(o: Option<u8>) -> u8 {
    o.unwrap()
}

// simlint: allow(no-such-rule): the rule name is wrong
fn unknown_rule() {}
