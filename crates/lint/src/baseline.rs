//! The checked-in baseline of grandfathered findings.
//!
//! New rules land against an existing codebase; the baseline records the
//! findings that predate the rule so the gate can hold the line at "no
//! *new* violations" while the backlog is burned down. Entries are keyed
//! by `(rule, file, snippet)` rather than line number, so unrelated edits
//! to a file do not invalidate the baseline; each entry absorbs one
//! finding with that key, so *adding* a second identical violation to the
//! same file still fails the gate.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::Finding;

/// A multiset of baseline keys.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

fn key(rule: &str, file: &str, snippet: &str) -> String {
    format!("{rule}\t{file}\t{snippet}")
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Parses the line-oriented format: `rule<TAB>file<TAB>snippet`,
    /// `#`-comments and blank lines ignored. Duplicate lines accumulate.
    pub fn parse(text: &str) -> Baseline {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Splits findings into (fresh, baselined). Each baseline entry
    /// absorbs at most one finding with its key; order is the engine's
    /// deterministic (file, line) order.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let (fresh, grandfathered, _) = self.partition_stale(findings);
        (fresh, grandfathered)
    }

    /// Like [`Baseline::partition`], but also returns the *stale* keys:
    /// baseline entries that absorbed nothing because the tree no longer
    /// produces a matching finding (one key per unspent entry). Stale
    /// entries are a gate failure in their own right (`stale-baseline`,
    /// exit 22) — a burned-down finding must leave the baseline, or it
    /// could silently resurrect later.
    pub fn partition_stale(
        &self,
        findings: Vec<Finding>,
    ) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut budget = self.counts.clone();
        let mut fresh = Vec::new();
        let mut grandfathered = Vec::new();
        for f in findings {
            let k = key(&f.rule, &f.file, &f.snippet);
            match budget.get_mut(&k) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    grandfathered.push(f);
                }
                _ => fresh.push(f),
            }
        }
        let mut stale = Vec::new();
        for (k, n) in &budget {
            for _ in 0..*n {
                stale.push(k.clone());
            }
        }
        (fresh, grandfathered, stale)
    }

    /// Renders findings as baseline-file content (sorted, with a header).
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| key(&f.rule, &f.file, &f.snippet))
            .collect();
        lines.sort();
        let mut out = String::from(
            "# simlint baseline: grandfathered findings, one per line as\n\
             # rule<TAB>file<TAB>snippet. Regenerate with `cargo run -p lint -- --write-baseline`.\n\
             # Entries absorb exactly one matching finding each; burn this file down, never grow it.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Returns `true` when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            snippet: snippet.to_string(),
            message: String::from("m"),
        }
    }

    #[test]
    fn matching_ignores_line_numbers() {
        let b = Baseline::parse("panic-freedom\tcrates/net/src/a.rs\t.expect(\n");
        let (fresh, old) = b.partition(vec![finding(
            "panic-freedom",
            "crates/net/src/a.rs",
            999,
            ".expect(",
        )]);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn each_entry_absorbs_one_finding() {
        let b = Baseline::parse("panic-freedom\tf.rs\t.unwrap(\n");
        let (fresh, old) = b.partition(vec![
            finding("panic-freedom", "f.rs", 1, ".unwrap("),
            finding("panic-freedom", "f.rs", 2, ".unwrap("),
        ]);
        assert_eq!(old.len(), 1, "first occurrence grandfathered");
        assert_eq!(fresh.len(), 1, "the second is a fresh violation");
    }

    #[test]
    fn duplicate_lines_accumulate() {
        let b = Baseline::parse("r\tf.rs\ts\nr\tf.rs\ts\n");
        assert_eq!(b.len(), 2);
        let (fresh, old) = b.partition(vec![
            finding("r", "f.rs", 1, "s"),
            finding("r", "f.rs", 2, "s"),
        ]);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\nr\tf.rs\ts\n");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn render_round_trips() {
        let fs = vec![finding("r", "b.rs", 1, "s2"), finding("r", "a.rs", 2, "s1")];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 2);
        let (fresh, _) = b.partition(fs);
        assert!(fresh.is_empty());
    }

    #[test]
    fn other_rule_or_file_does_not_match() {
        let b = Baseline::parse("r\tf.rs\ts\n");
        let (fresh, _) = b.partition(vec![finding("other", "f.rs", 1, "s")]);
        assert_eq!(fresh.len(), 1);
        let (fresh, _) = b.partition(vec![finding("r", "g.rs", 1, "s")]);
        assert_eq!(fresh.len(), 1);
    }
}
