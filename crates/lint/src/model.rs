//! The workspace semantic model: item extents, per-function identifier
//! dataflow, and the caller→callee edge map.
//!
//! The token-scanner rules of PR 5 see one token window at a time; the
//! rules added with this layer (unit-discipline above all) need to know
//! *where functions begin and end* and *which identifiers a function
//! reads, writes, and calls*. This module parses just enough Rust on top
//! of the tokenizer to answer those questions: a recursive item walker
//! recognizes `fn`/`struct`/`enum`/`trait`/`impl`/`mod`/`use`/`const`/
//! `static`/`type` items (recursing into `impl`, `trait`, and inline
//! `mod` bodies), records each item's half-open token extent, and for
//! every function extracts its call sites, identifier reads, and
//! identifier writes.
//!
//! It is a *lint-grade* model, not a compiler: name resolution is
//! textual (`Freq::cycles_from_nanos` stays a path string, a method call
//! is just its method name), and expression grammar is approximated by
//! bracket depth. That is exactly enough for dataflow over naming
//! conventions — which is the point: the conventions are the invariant.

use std::collections::{BTreeMap, BTreeSet};

use crate::files::FileInfo;
use crate::tokenizer::{Tok, TokKind};

/// The kinds of item the walker records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, impl method, or trait default method).
    Fn,
    /// A `struct` or `union` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `trait` definition (its default methods are also recorded).
    Trait,
    /// An `impl` block (its methods are also recorded).
    Impl,
    /// A `mod` item (inline bodies are recursed into).
    Mod,
    /// A `use` declaration.
    Use,
    /// A `const` or `static` item.
    Const,
    /// A `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition.
    Macro,
}

/// One recorded item with its token extent.
#[derive(Clone, Debug)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name: the identifier for most kinds, the rendered
    /// path for `use`, the implemented type (after `for` if present)
    /// for `impl`.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Half-open token-index extent, from the item keyword (or leading
    /// attribute) to one past the closing `}` or `;`.
    pub toks: (usize, usize),
}

/// Per-function dataflow facts.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// The bare function name.
    pub name: String,
    /// `crate::module::Container::name` — globally unique per extent.
    pub qualified: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Half-open token extent of the whole item (signature + body).
    pub toks: (usize, usize),
    /// Half-open token extent of the body block (empty for trait
    /// declarations without a default body).
    pub body: (usize, usize),
    /// Call targets: path calls keep their rendered path
    /// (`Freq::cycles_from_nanos`), method calls are the bare method
    /// name (`charge`), macros are excluded.
    pub calls: BTreeSet<String>,
    /// Identifiers read in the body (excluding keywords and call
    /// targets).
    pub reads: BTreeSet<String>,
    /// Identifiers assigned in the body (`x = …`, `x += …`,
    /// `let [mut] x`).
    pub writes: BTreeSet<String>,
}

/// The semantic model of one source file.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// Every recorded item, in source order (outer items precede the
    /// nested items discovered inside them).
    pub items: Vec<Item>,
    /// Every function, in source order.
    pub fns: Vec<FnInfo>,
}

/// The workspace-wide model: per-file models plus the caller→callee
/// edge map.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceModel {
    /// `rel_path` → file model, in deterministic path order.
    pub files: BTreeMap<String, FileModel>,
    /// Qualified caller → set of recorded call targets.
    pub edges: BTreeMap<String, BTreeSet<String>>,
}

impl WorkspaceModel {
    /// Builds the workspace model from `(info, source)` pairs.
    pub fn build(sources: &[(FileInfo, String)]) -> WorkspaceModel {
        let mut wm = WorkspaceModel::default();
        for (info, src) in sources {
            let lexed = crate::tokenizer::tokenize(src);
            let fm = FileModel::build(info, &lexed.toks);
            for f in &fm.fns {
                if !f.calls.is_empty() {
                    wm.edges
                        .entry(f.qualified.clone())
                        .or_default()
                        .extend(f.calls.iter().cloned());
                }
            }
            wm.files.insert(info.rel_path.clone(), fm);
        }
        wm
    }
}

impl FileModel {
    /// Parses the item structure of one token stream.
    pub fn build(info: &FileInfo, toks: &[Tok]) -> FileModel {
        let mut fm = FileModel::default();
        let ctx = info.module_display();
        walk_items(toks, 0, toks.len(), &ctx, &mut fm);
        fm
    }

    /// The function whose extent covers token index `i`, if any. Inner
    /// items shadow outer ones (a closure inside a fn still belongs to
    /// the fn; a fn inside a fn wins over its parent).
    pub fn fn_at(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.toks.0 <= i && i < f.toks.1)
            .last()
    }
}

/// Keywords never recorded as reads/writes/calls.
const KEYWORDS: &[&str] = &[
    "fn", "let", "mut", "if", "else", "match", "while", "for", "loop", "in", "return", "break",
    "continue", "struct", "enum", "impl", "trait", "use", "mod", "pub", "const", "static", "type",
    "where", "as", "ref", "move", "dyn", "box", "self", "Self", "super", "crate", "unsafe",
    "async", "await", "extern", "true", "false", "union",
];

fn is_keyword(t: &Tok) -> bool {
    t.kind == TokKind::Ident && KEYWORDS.contains(&t.text.as_str())
}

/// Recursively records the items of `toks[lo..hi]` under context `ctx`.
fn walk_items(toks: &[Tok], lo: usize, hi: usize, ctx: &str, fm: &mut FileModel) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        // Attributes: skip to the matching `]`.
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|u| u.is_punct('[')) {
            i = match matching(toks, i + 1, '[', ']') {
                Some(e) => e + 1,
                None => hi,
            };
            continue;
        }
        // Visibility: `pub` or `pub(crate)` etc.
        if t.is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|u| u.is_punct('(')) {
                i = match matching(toks, i, '(', ')') {
                    Some(e) => e + 1,
                    None => hi,
                };
            }
            continue;
        }
        // Fn modifiers: `const fn`, `unsafe fn`, `async fn`, `extern "C" fn`.
        // `const` alone is an item of its own, so look ahead for `fn`.
        if (t.is_ident("unsafe") || t.is_ident("async")
            || (t.is_ident("const") && toks.get(i + 1).is_some_and(|u| u.is_ident("fn") || u.is_ident("unsafe") || u.is_ident("async") || u.is_ident("extern")))
            || t.is_ident("extern"))
            && toks[i + 1..hi.min(i + 4)].iter().any(|u| u.is_ident("fn") || u.is_ident("impl") || u.is_ident("trait") || u.is_ident("mod"))
        {
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            i = record_fn(toks, i, hi, ctx, fm);
            continue;
        }
        if t.is_ident("struct") || t.is_ident("union") {
            i = record_named(toks, i, hi, ItemKind::Struct, fm);
            continue;
        }
        if t.is_ident("enum") {
            i = record_named(toks, i, hi, ItemKind::Enum, fm);
            continue;
        }
        if t.is_ident("trait") {
            i = record_container(toks, i, hi, ItemKind::Trait, ctx, fm);
            continue;
        }
        if t.is_ident("impl") {
            i = record_container(toks, i, hi, ItemKind::Impl, ctx, fm);
            continue;
        }
        if t.is_ident("mod") {
            i = record_container(toks, i, hi, ItemKind::Mod, ctx, fm);
            continue;
        }
        if t.is_ident("use") {
            i = record_use(toks, i, hi, fm);
            continue;
        }
        if t.is_ident("const") || t.is_ident("static") {
            i = record_named(toks, i, hi, ItemKind::Const, fm);
            continue;
        }
        if t.is_ident("type") {
            i = record_named(toks, i, hi, ItemKind::TypeAlias, fm);
            continue;
        }
        if t.is_ident("macro_rules") && toks.get(i + 1).is_some_and(|u| u.is_punct('!')) {
            i = record_named(toks, i, hi, ItemKind::Macro, fm);
            continue;
        }
        i += 1;
    }
}

/// Records a `fn` item starting at the `fn` keyword; returns the index
/// one past the item.
fn record_fn(toks: &[Tok], at: usize, hi: usize, ctx: &str, fm: &mut FileModel) -> usize {
    let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
        return at + 1;
    };
    let name = name_tok.text.clone();
    let end = item_extent(toks, at, hi);
    // The body is the outermost `{ … }` between the signature and the
    // item end; a trait declaration ends at `;` and has no body.
    let body = body_extent(toks, at, end);
    let qualified = format!("{ctx}::{name}");
    let (calls, reads, writes) = dataflow(toks, body.0, body.1);
    fm.items.push(Item {
        kind: ItemKind::Fn,
        name: name.clone(),
        line: toks[at].line,
        toks: (at, end),
    });
    fm.fns.push(FnInfo {
        name,
        qualified: qualified.clone(),
        line: toks[at].line,
        toks: (at, end),
        body,
        calls,
        reads,
        writes,
    });
    // Recurse into the body so nested fns (and body-local items) are
    // recorded too; `fn_at` resolves the innermost extent.
    if body.0 < body.1 {
        walk_items(toks, body.0 + 1, body.1.saturating_sub(1), &qualified, fm);
    }
    end
}

/// Records a named item (`struct X…;` / `const X: … = …;` / `enum X {…}`)
/// without recursing into it.
fn record_named(toks: &[Tok], at: usize, hi: usize, kind: ItemKind, fm: &mut FileModel) -> usize {
    let name = toks[at + 1..hi.min(at + 4)]
        .iter()
        .find(|t| t.kind == TokKind::Ident && !is_keyword(t))
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let end = item_extent(toks, at, hi);
    fm.items.push(Item {
        kind,
        name,
        line: toks[at].line,
        toks: (at, end),
    });
    end
}

/// Records an `impl`/`trait`/`mod` item and recurses into its brace body
/// so nested fns are found. Returns the index one past the item.
fn record_container(
    toks: &[Tok],
    at: usize,
    hi: usize,
    kind: ItemKind,
    ctx: &str,
    fm: &mut FileModel,
) -> usize {
    let end = item_extent(toks, at, hi);
    // Find the opening brace of the body (a `mod name;` has none).
    let mut open = None;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(at + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            open = Some(j);
            break;
        }
    }
    // Item name: for `impl`, the implemented type — the first ident
    // after `for` when present, else the first non-keyword ident after
    // any generics; for `trait`/`mod`, the declared name.
    let header = &toks[at + 1..open.unwrap_or(end).min(hi)];
    let name = match kind {
        ItemKind::Impl => {
            let after_for = header.iter().position(|t| t.is_ident("for"));
            let search: &[Tok] = match after_for {
                Some(f) => &header[f + 1..],
                None => {
                    // Skip leading generics `<…>`.
                    let mut d = 0i32;
                    let mut s = 0;
                    for (j, t) in header.iter().enumerate() {
                        if t.is_punct('<') {
                            d += 1;
                        } else if t.is_punct('>') && j > 0 && !header[j - 1].is_punct('-') {
                            d -= 1;
                            if d == 0 {
                                s = j + 1;
                                break;
                            }
                        } else if d == 0 {
                            s = j;
                            break;
                        }
                    }
                    &header[s..]
                }
            };
            search
                .iter()
                .find(|t| t.kind == TokKind::Ident && !is_keyword(t))
                .map(|t| t.text.clone())
                .unwrap_or_default()
        }
        _ => header
            .iter()
            .find(|t| t.kind == TokKind::Ident && !is_keyword(t))
            .map(|t| t.text.clone())
            .unwrap_or_default(),
    };
    fm.items.push(Item {
        kind,
        name: name.clone(),
        line: toks[at].line,
        toks: (at, end),
    });
    if let Some(o) = open {
        let inner_ctx = if name.is_empty() {
            ctx.to_string()
        } else {
            format!("{ctx}::{name}")
        };
        walk_items(toks, o + 1, end.saturating_sub(1), &inner_ctx, fm);
    }
    end
}

/// Records a `use` declaration; the name is the rendered path.
fn record_use(toks: &[Tok], at: usize, hi: usize, fm: &mut FileModel) -> usize {
    let end = item_extent(toks, at, hi);
    let name: String = toks[at + 1..end.saturating_sub(1).max(at + 1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    fm.items.push(Item {
        kind: ItemKind::Use,
        name,
        line: toks[at].line,
        toks: (at, end),
    });
    end
}

/// One past the last token of the item starting at `at`: past the
/// top-level `;`, or past the `}` closing the item's brace block.
fn item_extent(toks: &[Tok], at: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        } else if t.is_punct('{') && depth == 0 {
            return matching(toks, i, '{', '}').map_or(hi, |e| (e + 1).min(hi));
        }
        i += 1;
    }
    hi
}

/// The body block extent of a fn item spanning `[at, end)`: the
/// outermost `{ … }`, or `(end, end)` for a bodyless declaration.
fn body_extent(toks: &[Tok], at: usize, end: usize) -> (usize, usize) {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(at) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return (j, end);
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
    }
    (end, end)
}

/// Index of the closing bracket matching the opener at `open`.
fn matching(toks: &[Tok], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Extracts (calls, reads, writes) from a body token range.
#[allow(clippy::type_complexity)]
fn dataflow(
    toks: &[Tok],
    lo: usize,
    hi: usize,
) -> (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>) {
    let mut calls = BTreeSet::new();
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `let [mut] name` introduces a binding: a write.
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|u| u.is_ident("mut")) {
                j += 1;
            }
            if let Some(n) = toks.get(j).filter(|u| u.kind == TokKind::Ident && !is_keyword(u)) {
                writes.insert(n.text.clone());
            }
            i += 1;
            continue;
        }
        if is_keyword(t) {
            i += 1;
            continue;
        }
        // Macro invocation: skip the name, scan the arguments normally.
        if toks.get(i + 1).is_some_and(|u| u.is_punct('!')) {
            i += 2;
            continue;
        }
        // Path or bare call: `a::b::c(` records "a::b::c".
        if toks.get(i + 1).is_some_and(|u| u.is_punct('(')) {
            let method = i >= lo + 1 && toks[i - 1].is_punct('.');
            if method {
                calls.insert(t.text.clone());
            } else {
                // Walk back over `seg ::` prefixes.
                let mut start = i;
                while start >= lo + 3
                    && toks[start - 1].is_punct(':')
                    && toks[start - 2].is_punct(':')
                    && toks[start - 3].kind == TokKind::Ident
                    && !is_keyword(&toks[start - 3])
                {
                    start -= 3;
                }
                let path: String = toks[start..=i]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join("");
                calls.insert(path);
            }
            i += 1;
            continue;
        }
        // Path segments other than the last are not reads of locals.
        if toks.get(i + 1).is_some_and(|u| u.is_punct(':'))
            && toks.get(i + 2).is_some_and(|u| u.is_punct(':'))
        {
            i += 1;
            continue;
        }
        // Assignment target: `name =` / `name += …` (but not `==`, `<=`,
        // `>=`, `!=`, `=>`).
        let mut j = i + 1;
        let compound = toks
            .get(j)
            .is_some_and(|u| "+-*/%&|^".chars().any(|c| u.is_punct(c)));
        if compound {
            j += 1;
        }
        let is_assign = toks.get(j).is_some_and(|u| u.is_punct('='))
            && !toks.get(j + 1).is_some_and(|u| u.is_punct('=') || u.is_punct('>'))
            && (compound || !toks.get(j.wrapping_sub(1)).is_some_and(|u| u.is_punct('<') || u.is_punct('>') || u.is_punct('!')));
        if is_assign {
            writes.insert(t.text.clone());
            if compound {
                // `x += y` also reads x.
                reads.insert(t.text.clone());
            }
        } else {
            reads.insert(t.text.clone());
        }
        i += 1;
    }
    (calls, reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(path: &str, src: &str) -> FileModel {
        let info = FileInfo::classify(path).expect("classifiable");
        let lexed = crate::tokenizer::tokenize(src);
        FileModel::build(&info, &lexed.toks)
    }

    const FIXTURE: &str = r#"
use std::fmt;

pub const LIMIT: u64 = 8;

pub struct Gate { level: u32 }

pub enum Mode { On, Off }

impl Gate {
    pub fn new(level: u32) -> Gate { Gate { level } }
    pub fn step(&mut self, load: u64) -> u64 {
        let mut acc = self.level as u64;
        acc += load;
        helper(acc);
        self.level = clamp(acc) as u32;
        acc
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.level)
    }
}

pub trait Duty {
    fn rate(&self) -> u64;
    fn doubled(&self) -> u64 { self.rate() * 2 }
}

fn helper(x: u64) -> u64 { Freq::cycles_from_nanos(x) }

fn clamp(x: u64) -> u64 { if x > LIMIT { LIMIT } else { x } }

mod inner {
    pub fn leaf() {}
}
"#;

    #[test]
    fn items_and_extents() {
        let fm = model("crates/sim/src/gate.rs", FIXTURE);
        let kinds: Vec<(ItemKind, &str)> = fm
            .items
            .iter()
            .map(|i| (i.kind, i.name.as_str()))
            .collect();
        assert!(kinds.contains(&(ItemKind::Use, "std::fmt")));
        assert!(kinds.contains(&(ItemKind::Const, "LIMIT")));
        assert!(kinds.contains(&(ItemKind::Struct, "Gate")));
        assert!(kinds.contains(&(ItemKind::Enum, "Mode")));
        assert!(kinds.contains(&(ItemKind::Trait, "Duty")));
        assert!(kinds.contains(&(ItemKind::Mod, "inner")));
        // Both impls resolve to the implemented type.
        assert_eq!(
            fm.items.iter().filter(|i| i.kind == ItemKind::Impl && i.name == "Gate").count(),
            2,
            "impl Gate and impl Display for Gate both name Gate"
        );
    }

    #[test]
    fn fns_are_qualified_by_container() {
        let fm = model("crates/sim/src/gate.rs", FIXTURE);
        let quals: Vec<&str> = fm.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "sim::gate::Gate::new",
                "sim::gate::Gate::step",
                "sim::gate::Gate::fmt",
                "sim::gate::Duty::rate",
                "sim::gate::Duty::doubled",
                "sim::gate::helper",
                "sim::gate::clamp",
                "sim::gate::inner::leaf",
            ]
        );
        // The bodyless trait method has an empty body extent.
        let rate = fm.fns.iter().find(|f| f.name == "rate").unwrap();
        assert_eq!(rate.body.0, rate.body.1);
    }

    #[test]
    fn dataflow_reads_writes_calls() {
        let fm = model("crates/sim/src/gate.rs", FIXTURE);
        let step = fm.fns.iter().find(|f| f.name == "step").unwrap();
        assert!(step.calls.contains("helper"));
        assert!(step.calls.contains("clamp"));
        assert!(step.writes.contains("acc"), "let-binding is a write");
        assert!(step.writes.contains("level"), "field assignment writes the field name");
        assert!(step.reads.contains("load"));
        assert!(step.reads.contains("acc"), "compound assignment also reads");

        let helper = fm.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(
            helper.calls.contains("Freq::cycles_from_nanos"),
            "path calls keep the rendered path: {:?}",
            helper.calls
        );

        let clamp = fm.fns.iter().find(|f| f.name == "clamp").unwrap();
        assert!(clamp.reads.contains("LIMIT"));
        assert!(clamp.writes.is_empty(), "comparisons are not writes: {:?}", clamp.writes);

        let doubled = fm.fns.iter().find(|f| f.name == "doubled").unwrap();
        assert!(doubled.calls.contains("rate"), "method call records the name");
    }

    #[test]
    fn every_fn_keyword_lands_in_exactly_one_fn_extent() {
        let lexed = crate::tokenizer::tokenize(FIXTURE);
        let fm = model("crates/sim/src/gate.rs", FIXTURE);
        for (i, t) in lexed.toks.iter().enumerate() {
            if t.is_ident("fn") {
                let covering = fm.fns.iter().filter(|f| f.toks.0 <= i && i < f.toks.1).count();
                assert_eq!(covering, 1, "fn keyword at line {} covered once", t.line);
            }
        }
    }

    #[test]
    fn fn_at_prefers_innermost() {
        let src = "fn outer() { fn inner() { leaf(); } inner(); }";
        let fm = model("crates/sim/src/x.rs", src);
        let lexed = crate::tokenizer::tokenize(src);
        let leaf = lexed.toks.iter().position(|t| t.is_ident("leaf")).unwrap();
        assert_eq!(fm.fn_at(leaf).unwrap().name, "inner");
        let last = lexed.toks.len() - 2;
        assert_eq!(fm.fn_at(last).unwrap().name, "outer");
    }

    #[test]
    fn workspace_edges_are_keyed_by_qualified_caller() {
        let info = FileInfo::classify("crates/sim/src/gate.rs").unwrap();
        let wm = WorkspaceModel::build(&[(info, FIXTURE.to_string())]);
        let step_edges = wm.edges.get("sim::gate::Gate::step").unwrap();
        assert!(step_edges.contains("helper"));
        assert!(step_edges.contains("clamp"));
        let helper_edges = wm.edges.get("sim::gate::helper").unwrap();
        assert!(helper_edges.contains("Freq::cycles_from_nanos"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail_extents() {
        let src = "fn map<F: Fn(u8) -> u8>(f: F) -> u8 where F: Copy { f(1) }\nfn next() {}";
        let fm = model("crates/sim/src/x.rs", src);
        assert_eq!(fm.fns.len(), 2);
        assert_eq!(fm.fns[0].name, "map");
        assert_eq!(fm.fns[1].name, "next");
    }
}
