//! Human, JSON, and SARIF reporting, and the exit-code contract.
//!
//! Exit codes (authoritative table: `crates/lint/src/registry.rs`, or
//! `simlint --exit-codes`):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean (all findings suppressed or baselined) |
//! | 2    | usage error |
//! | 3    | I/O error (unreadable workspace or baseline) |
//! | 4    | `--fix --dry-run` found fixable findings |
//! | 9    | fresh findings across multiple rules |
//! | 10   | determinism |
//! | 11   | drop-accounting |
//! | 12   | interrupt-discipline |
//! | 13   | ledger-discipline |
//! | 14   | panic-freedom |
//! | 15   | deprecated-config |
//! | 16   | bad-suppression |
//! | 17   | smp-isolation |
//! | 18   | flow-discipline |
//! | 19   | class-discipline |
//! | 20   | unit-discipline |
//! | 21   | exit-code-registry |
//! | 22   | stale-baseline |
//!
//! `scripts/ci.sh` collapses any non-zero simlint exit into its own
//! exit 7; the per-rule codes are for humans and tooling running the
//! binary directly.

use std::collections::BTreeMap;

use crate::rules::{exit_code_for, EXIT_MULTIPLE_RULES};
use crate::{Finding, WorkspaceLint};

/// The exit code a lint result maps to.
pub fn exit_code(result: &WorkspaceLint) -> i32 {
    let mut rules: Vec<&str> = result.fresh.iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    rules.dedup();
    match rules.as_slice() {
        [] => 0,
        [one] => exit_code_for(one),
        _ => EXIT_MULTIPLE_RULES,
    }
}

/// Per-rule counts of a finding list.
pub fn counts_by_rule(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule.clone()).or_insert(0) += 1;
    }
    counts
}

/// Renders the human-readable report.
pub fn human(result: &WorkspaceLint) -> String {
    let mut out = String::new();
    for f in &result.fresh {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    match: {}\n",
            f.file, f.line, f.rule, f.message, f.snippet
        ));
    }
    if result.fresh.is_empty() {
        out.push_str(&format!(
            "simlint: clean — {} files scanned, {} baselined finding(s), {} suppressed\n",
            result.files_scanned,
            result.baselined.len(),
            result.suppressed.len()
        ));
    } else {
        out.push_str(&format!(
            "simlint: {} fresh finding(s) in {} files scanned ({} baselined, {} suppressed):\n",
            result.fresh.len(),
            result.files_scanned,
            result.baselined.len(),
            result.suppressed.len()
        ));
        for (rule, n) in counts_by_rule(&result.fresh) {
            out.push_str(&format!("    {rule}: {n}\n"));
        }
    }
    out
}

/// Renders the machine-readable report (self-contained JSON, no deps).
pub fn json(result: &WorkspaceLint) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in result.fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
            quote(&f.rule),
            quote(&f.file),
            f.line,
            quote(&f.snippet),
            quote(&f.message)
        ));
    }
    if !result.fresh.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"counts\": {");
    for (i, (rule, n)) in counts_by_rule(&result.fresh).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", quote(rule), n));
    }
    out.push_str(&format!(
        "}},\n  \"files_scanned\": {},\n  \"baselined\": {},\n  \"suppressed\": {},\n  \"exit_code\": {}\n}}\n",
        result.files_scanned,
        result.baselined.len(),
        result.suppressed.len(),
        exit_code(result)
    ));
    out
}

/// Renders the report as minimal SARIF 2.1.0 — one run, one rule entry
/// per rule with fresh findings, one result per finding. Enough for CI
/// artifact upload and SARIF viewers; no external dependencies.
pub fn sarif(result: &WorkspaceLint) -> String {
    let mut rule_ids: Vec<&str> = result.fresh.iter().map(|f| f.rule.as_str()).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let mut out = String::from(
        "{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"simlint\",\n          \"rules\": [",
    );
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"properties\": {{\"exitCode\": {}}}}}",
            quote(id),
            exit_code_for(id)
        ));
    }
    if !rule_ids.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n      \"results\": [");
    for (i, f) in result.fresh.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            quote(&f.rule),
            quote(&f.message),
            quote(&f.file),
            f.line.max(1)
        ));
    }
    if !result.fresh.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: "crates/net/src/x.rs".to_string(),
            line: 3,
            snippet: ".unwrap(".to_string(),
            message: "a \"quoted\" message".to_string(),
        }
    }

    fn result(rules: &[&str]) -> WorkspaceLint {
        WorkspaceLint {
            fresh: rules.iter().map(|r| finding(r)).collect(),
            baselined: vec![],
            suppressed: vec![],
            files_scanned: 10,
        }
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(exit_code(&result(&[])), 0);
        assert_eq!(exit_code(&result(&["panic-freedom"])), 14);
        assert_eq!(exit_code(&result(&["determinism"])), 10);
        assert_eq!(exit_code(&result(&["determinism", "panic-freedom"])), 9);
        assert_eq!(exit_code(&result(&["bad-suppression"])), 16);
    }

    #[test]
    fn human_report_lists_findings_and_counts() {
        let r = result(&["panic-freedom", "panic-freedom"]);
        let h = human(&r);
        assert!(h.contains("crates/net/src/x.rs:3: [panic-freedom]"));
        assert!(h.contains("panic-freedom: 2"));
        let clean = human(&result(&[]));
        assert!(clean.contains("clean"));
    }

    #[test]
    fn sarif_lists_rules_and_results() {
        let s = sarif(&result(&["determinism", "panic-freedom"]));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"simlint\""));
        assert!(s.contains("{\"id\": \"determinism\", \"properties\": {\"exitCode\": 10}}"));
        assert!(s.contains("\"ruleId\": \"panic-freedom\""));
        assert!(s.contains("\"uri\": \"crates/net/src/x.rs\""));
        assert!(s.contains("\"startLine\": 3"));
        let clean = sarif(&result(&[]));
        assert!(clean.contains("\"results\": []"));
    }

    #[test]
    fn json_is_escaped_and_self_describing() {
        let j = json(&result(&["determinism"]));
        assert!(j.contains("\"a \\\"quoted\\\" message\""));
        assert!(j.contains("\"exit_code\": 10"));
        assert!(j.contains("\"files_scanned\": 10"));
        let empty = json(&result(&[]));
        assert!(empty.contains("\"findings\": []"));
        assert!(empty.contains("\"exit_code\": 0"));
    }
}
