//! A comment/string/raw-string-aware Rust lexer.
//!
//! The rules match token *sequences*, never raw text, so rule-triggering
//! words inside string literals, doc examples, and comments can never
//! produce findings. The lexer is deliberately small: it does not need to
//! be a full Rust grammar, only to split source into identifiers,
//! numbers, and punctuation while skipping every kind of literal and
//! comment Rust has (line, block — nested — doc, `"…"`, `r#"…"#`,
//! `b"…"`, `'c'`, `b'c'`) and while telling lifetimes (`'a`) apart from
//! character literals (`'a'`).
//!
//! Comments are not discarded entirely: any comment whose text contains
//! a `simlint:` directive is surfaced to the suppression parser with its
//! line number.

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `HashMap`).
    Ident,
    /// A numeric literal (`42`, `0xff`, `1u32`).
    Num,
    /// A single punctuation character (`:`, `=`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` `:`).
    Punct,
    /// A lifetime (`'a`), kept distinct so it can never be confused with
    /// an identifier in a path match.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token's text (for `Punct`, a single character).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Half-open `char`-index span in the source (autofix rewrites
    /// operate on a `Vec<char>` view, so spans count chars, not bytes).
    pub span: (usize, usize),
}

impl Tok {
    /// Returns `true` when the token is an identifier with this exact text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Returns `true` when the token is this punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// A comment that mentions `simlint:`, handed to the suppression parser.
#[derive(Clone, Debug)]
pub struct LintComment {
    /// The comment body with the leading `//`/`/*` markers stripped.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Half-open `char`-index span of the whole comment, markers
    /// included (`//` through end of line, or `/*` through `*/`).
    pub span: (usize, usize),
    /// Whether this is a `//` line comment (the only kind the
    /// suppression normalizer rewrites).
    pub line_comment: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals removed.
    pub toks: Vec<Tok>,
    /// Comments containing `simlint:` directives.
    pub lint_comments: Vec<LintComment>,
}

/// Lexes `src` into tokens, skipping comments and every literal form.
pub fn tokenize(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                c => {
                    let start = self.pos;
                    self.pos += 1;
                    self.push_tok(TokKind::Punct, c.to_string(), start);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Emits a token whose text spans `[start, self.pos)`.
    fn push_tok(&mut self, kind: TokKind, text: String, start: usize) {
        self.out.toks.push(Tok {
            kind,
            text,
            line: self.line,
            span: (start, self.pos),
        });
    }

    fn note_comment(&mut self, text: String, line: u32, start: usize, line_comment: bool) {
        if text.contains("simlint:") {
            self.out.lint_comments.push(LintComment {
                text,
                line,
                span: (start, self.pos),
                line_comment,
            });
        }
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        let mut text = String::new();
        self.pos += 2; // "//"
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.note_comment(text, start_line, start, true);
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        let mut text = String::new();
        self.pos += 2; // "/*"
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.note_comment(text, start_line, start, false);
    }

    /// A plain `"…"` string with escapes.
    fn string_literal(&mut self) {
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    // A `\` escape consumes the next char, which may be a
                    // line-continuation newline.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    return;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// `r"…"` / `r##"…"##` raw strings: no escapes, terminated by a quote
    /// followed by the same number of hashes.
    fn raw_string(&mut self, hashes: usize) {
        // Caller consumed `r`/`br` and the hashes; we sit on the quote.
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            if c == '"' && (1..=hashes).all(|i| self.peek(i) == Some('#')) {
                self.pos += 1 + hashes;
                return;
            }
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// A `'` is either a lifetime or a character literal.
    fn quote(&mut self) {
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal. The char after the backslash is
                // consumed unconditionally — it may itself be a quote
                // (`'\''`) or a backslash (`'\\'`), neither of which
                // closes the literal — then we scan to the real closing
                // quote (covers multi-char escapes like `'\u{1F600}'`).
                self.pos += 3;
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char literal; `'a` (no closing quote after
                // the identifier run) is a lifetime.
                let mut end = 2;
                while self.peek(end).is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.peek(end) == Some('\'') {
                    self.pos += end + 1; // char literal
                } else {
                    let name: String = (1..end).filter_map(|i| self.peek(i)).collect();
                    let start = self.pos;
                    self.pos += end;
                    self.push_tok(TokKind::Lifetime, name, start);
                }
            }
            Some(_) => {
                // `'('` and friends: quote, one char, quote.
                self.pos += 3;
            }
            None => self.pos += 1,
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Num, text, start);
    }

    /// An identifier — unless it is the `r`/`b`/`br` prefix of a raw or
    /// byte literal, in which case the literal is skipped instead.
    fn ident_or_prefixed_literal(&mut self) {
        let mut end = 0;
        while self.peek(end).is_some_and(is_ident_continue) {
            end += 1;
        }
        let text: String = (0..end).filter_map(|i| self.peek(i)).collect();

        // Raw / byte string prefixes.
        if text == "r" || text == "b" || text == "br" {
            let mut hashes = 0;
            while self.peek(end + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(end + hashes) == Some('"') {
                if hashes == 0 && text == "b" {
                    // b"…": plain escape rules.
                    self.pos += end;
                    self.string_literal();
                } else if text == "b" && hashes > 0 {
                    // `b#` is not a literal prefix; fall through to ident.
                    let start = self.pos;
                    self.pos += end;
                    self.push_tok(TokKind::Ident, text, start);
                } else {
                    self.pos += end + hashes;
                    if hashes == 0 {
                        // r"…" has no escapes.
                        self.raw_string(0);
                    } else {
                        self.raw_string(hashes);
                    }
                }
                return;
            }
            if text == "b" && self.peek(end) == Some('\'') {
                // b'x' byte literal.
                self.pos += end;
                self.quote();
                return;
            }
            if text == "r" && hashes == 1 && self.peek(end + 1).is_some_and(is_ident_start) {
                // r#ident raw identifier: emit the identifier itself.
                self.pos += end + 1;
                self.ident_or_prefixed_literal();
                return;
            }
        }

        let start = self.pos;
        self.pos += end;
        self.push_tok(TokKind::Ident, text, start);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "// Instant::now()\n/* HashMap */ fn main() {}\n/* outer /* nested */ still */ let x = 1;";
        assert_eq!(idents(src), vec!["fn", "main", "let", "x"]);
    }

    #[test]
    fn skips_string_contents() {
        let src = r#"let s = "Instant::now() HashMap unwrap()"; let t = 'u';"#;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn skips_raw_strings_with_hashes() {
        let src = "let s = r#\"unwrap() \" still in string \"# ; done";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = tokenize(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("x") && t.line != 1));
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let a = '\''; let b = '\n'; end";
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "end"]);
    }

    #[test]
    fn line_numbers_advance() {
        let src = "a\nb\n\nc";
        let lexed = tokenize(src);
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn collects_simlint_comments_only() {
        let src = "// simlint: allow(panic-freedom): fixture\n// plain comment\nfn f() {}";
        let lexed = tokenize(src);
        assert_eq!(lexed.lint_comments.len(), 1);
        assert_eq!(lexed.lint_comments[0].line, 1);
        assert!(lexed.lint_comments[0].text.contains("allow(panic-freedom)"));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let src = r##"let a = b"unwrap()"; let r#fn = 1; let c = b'x';"##;
        assert_eq!(idents(src), vec!["let", "a", "let", "fn", "let", "c"]);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"line\nbreak\";\nnext";
        let lexed = tokenize(src);
        let next = lexed.toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_desync() {
        // Regression: `'\''` used to end at the *escaped* quote, leaving
        // the closing quote to be re-lexed as a new char literal that
        // swallowed the following tokens.
        let src = r"let q = '\''; marker(); let b = '\\'; after();";
        assert_eq!(
            idents(src),
            vec!["let", "q", "marker", "let", "b", "after"]
        );
    }

    #[test]
    fn multichar_escapes_in_char_literals() {
        let src = r"let e = '\u{1F600}'; let h = '\x41'; done";
        assert_eq!(idents(src), vec!["let", "e", "let", "h", "done"]);
    }

    #[test]
    fn lifetimes_chars_and_labels_mixed_on_one_line() {
        // The full ambiguity zoo: generic lifetimes, `'static`, an
        // anonymous lifetime, loop labels, and char literals that look
        // like lifetimes — all disambiguated on the same line.
        let src = "fn f<'a, 'b>(x: &'a str, y: &'_ [u8], s: &'static str) -> char { 'l: loop { break 'l; } if true { 'b' } else { 'a' } }";
        let lexed = tokenize(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "b", "a", "_", "static", "l", "l"]);
        // The char literals never become Idents or Lifetimes.
        assert!(!lexed.toks.iter().any(|t| t.is_ident("b") || t.is_ident("a")));
    }

    #[test]
    fn nested_block_comments_to_depth_three() {
        let src = "before /* 1 /* 2 /* 3 */ 2 */ 1 */ after\n/* unterminated /* nest";
        assert_eq!(idents(src), vec!["before", "after"]);
        // `/**/` and `/***/` terminate immediately.
        assert_eq!(idents("a /**/ b /***/ c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn spans_cover_token_text_in_chars() {
        let src = "let nÿme = 42; // simlint: allow(x): y";
        let lexed = tokenize(src);
        let chars: Vec<char> = src.chars().collect();
        for t in &lexed.toks {
            let (s, e) = t.span;
            let slice: String = chars[s..e].iter().collect();
            assert_eq!(slice, t.text, "span must reproduce the token text");
        }
        let c = &lexed.lint_comments[0];
        let slice: String = chars[c.span.0..c.span.1].iter().collect();
        assert!(slice.starts_with("//"), "comment span includes the marker");
        assert!(slice.ends_with("y"));
        assert!(c.line_comment);
    }
}
