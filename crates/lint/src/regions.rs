//! Detection of `#[cfg(test)]` / `#[test]` regions in a token stream.
//!
//! Several rules (panic-freedom, ledger-discipline, deprecated-config)
//! exempt test code: a test may construct fixtures in ways production
//! code must not. A "test region" is the token span of any item carrying
//! a `#[cfg(test)]`-style or `#[test]` attribute — usually a whole
//! `mod tests { … }` block.

use crate::tokenizer::Tok;

/// Half-open token-index ranges covered by test-only code.
#[derive(Clone, Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Returns `true` when token index `i` falls inside a test region.
    pub fn contains(&self, i: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// Number of detected regions (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns `true` when no test regions were found.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Computes the test regions of a token stream.
pub fn test_regions(toks: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching_bracket(toks, i + 1) {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&toks[i + 2..attr_end]) {
                if let Some(item_end) = item_end(toks, attr_end + 1) {
                    regions.ranges.push((i, item_end + 1));
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Does the attribute body mark test-only code? Matches `test`,
/// `cfg(test)`, and `cfg(any(test, …))`; does not match
/// `cfg(feature = "…")` or strings (strings never lex into tokens).
fn attr_is_test(body: &[Tok]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        // `cfg(not(test))` guards *production* code: the conservative
        // reading of any `not` in the predicate is "not a test region".
        Some(t) if t.is_ident("cfg") => {
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Finds the last token of the item starting at `start` (skipping any
/// further attributes): either a top-level `;` or the `}` closing the
/// item's brace block. Depth is tracked over `()`, `[]`, and `{}` so a
/// `;` inside `[u8; 2]` or a nested block never ends the item early.
fn item_end(toks: &[Tok], mut start: usize) -> Option<usize> {
    // Skip stacked attributes: #[cfg(test)] #[allow(dead_code)] mod m {…}
    while toks.get(start).is_some_and(|t| t.is_punct('#'))
        && toks.get(start + 1).is_some_and(|t| t.is_punct('['))
    {
        start = matching_bracket(toks, start + 1)? + 1;
    }
    let mut depth = 0i32;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return Some(i);
        } else if t.is_punct('{') && depth == 0 {
            // Match the brace block.
            let mut braces = 0i32;
            for (j, u) in toks.iter().enumerate().skip(i) {
                if u.is_punct('{') {
                    braces += 1;
                } else if u.is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        return Some(j);
                    }
                }
            }
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn regions_of(src: &str) -> (Vec<Tok>, TestRegions) {
        let lexed = tokenize(src);
        let r = test_regions(&lexed.toks);
        (lexed.toks, r)
    }

    fn ident_in_test(toks: &[Tok], regions: &TestRegions, name: &str) -> bool {
        let i = toks.iter().position(|t| t.is_ident(name)).expect("ident present");
        regions.contains(i)
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn inner() { helper(); } }\nfn after() {}";
        let (toks, r) = regions_of(src);
        assert_eq!(r.len(), 1);
        assert!(ident_in_test(&toks, &r, "helper"));
        assert!(!ident_in_test(&toks, &r, "prod"));
        assert!(!ident_in_test(&toks, &r, "after"));
    }

    #[test]
    fn test_fn_attribute_is_a_region() {
        let src = "#[test]\nfn check() { probe(); }\nfn prod() { other(); }";
        let (toks, r) = regions_of(src);
        assert!(ident_in_test(&toks, &r, "probe"));
        assert!(!ident_in_test(&toks, &r, "other"));
    }

    #[test]
    fn cfg_any_with_test_counts() {
        let src = "#[cfg(any(test, doctest))] mod m { inner(); }";
        let (toks, r) = regions_of(src);
        assert!(ident_in_test(&toks, &r, "inner"));
    }

    #[test]
    fn cfg_feature_is_not_a_region() {
        // `feature = "proptest"` must not register: the string "test"
        // inside a literal never lexes into a token.
        let src = "#[cfg(feature = \"proptest\")] mod m { inner(); }";
        let (_, r) = regions_of(src);
        assert!(r.is_empty());
    }

    #[test]
    fn semicolon_items_and_tricky_depths() {
        let src = "#[cfg(test)] use std::collections::HashMap;\nfn prod() { let x: [u8; 2] = [0, 1]; probe(); }";
        let (toks, r) = regions_of(src);
        assert_eq!(r.len(), 1);
        assert!(ident_in_test(&toks, &r, "HashMap"));
        assert!(!ident_in_test(&toks, &r, "probe"));
    }

    #[test]
    fn stacked_attributes_extend_to_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn f() { probe(); } }";
        let (toks, r) = regions_of(src);
        assert!(ident_in_test(&toks, &r, "probe"));
    }
}
