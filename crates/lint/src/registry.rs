//! The exit-code registry: one table for every process exit code in the
//! workspace.
//!
//! The workspace has grown a constellation of per-gate exit codes —
//! `ci.sh` maps each CI gate to a number, `figures` maps each figure's
//! shape check, `livelock chaos`/`observe` map each violated invariant,
//! and `simlint` maps each rule. Before this table the numbers lived in
//! comments and drifted: the same code meant different things to
//! different owners, and a deleted gate could leave its documented code
//! behind. Now every code is registered here with an owner and a
//! meaning; the `exit-code-registry` rule (exit 21) cross-checks the
//! table against reality in both directions:
//!
//! * every `process::exit`/`ExitCode::from` numeric literal in scanned
//!   Rust and every `exit N` command in `scripts/ci.sh` must be
//!   registered (bins reference the [`codes`] constants instead of
//!   literals);
//! * every registered constant must still be referenced somewhere, and
//!   every registered `ci.sh` code must still appear in the script —
//!   stale entries fail the gate.
//!
//! `simlint --exit-codes` renders the table as the markdown block
//! embedded in README.md. Codes are unique per owner, not globally:
//! `livelock chaos` and `livelock observe` reuse 3–6 with different
//! meanings, which is exactly the ambiguity the owner column resolves.

use std::collections::BTreeSet;
use std::path::Path;

use crate::files::FileInfo;
use crate::rules;
use crate::Finding;

/// Named constants for every Rust-side exit code. Bins use these
/// instead of numeric literals so the registry can tell a live code
/// from a stale one by reference.
pub mod codes {
    /// figures: I/O or argument failure (unwritable results/, bad --jobs).
    pub const FIGURES_IO: i32 = 1;
    /// figures: a throughput figure violates the paper's qualitative shape.
    pub const FIGURES_SHAPE: i32 = 2;
    /// figures: the L-1 latency gate failed (polled p99 not below unmodified).
    pub const FIGURES_LATENCY: i32 = 3;
    /// figures: the C-1 CPU-share gate failed (ledger shares off-claim).
    pub const FIGURES_CPU: i32 = 4;
    /// figures: the R-1 fault gate failed (graceful degradation violated).
    pub const FIGURES_FAULT: i32 = 5;
    /// figures: the S-1 SMP gate failed (MLFRR scaling off-claim).
    pub const FIGURES_SMP: i32 = 6;
    /// figures: the O-1 online-detection gate failed.
    pub const FIGURES_OBSERVE: i32 = 7;
    /// figures: the P-1 priority-isolation gate failed.
    pub const FIGURES_PRIORITY: i32 = 8;

    /// livelock: usage error (unknown subcommand or malformed flags).
    pub const LIVELOCK_USAGE: i32 = 2;

    /// livelock chaos: polled kernel delivered nothing under the storm.
    pub const CHAOS_NO_DELIVERY: i32 = 3;
    /// livelock chaos: interrupt gate ended the run inhibited.
    pub const CHAOS_GATE_INHIBITED: i32 = 4;
    /// livelock chaos: screend queue not drained after the drain window.
    pub const CHAOS_SCREEND_BACKLOG: i32 = 5;
    /// livelock chaos: conservation ledger left packets unaccounted.
    pub const CHAOS_LEDGER_LEAK: i32 = 6;
    /// livelock chaos: fewer faults fired than were scheduled.
    pub const CHAOS_FAULTS_MISSING: i32 = 7;
    /// livelock chaos: unmodified kernel failed to livelock under the storm.
    pub const CHAOS_NOT_LIVELOCKED: i32 = 8;
    /// livelock chaos --priority: classified kernel showed priority inversion.
    pub const CHAOS_PRIORITY_INVERSION: i32 = 9;
    /// livelock chaos --priority: unmodified kernel showed no inversion contrast.
    pub const CHAOS_NO_INVERSION_CONTRAST: i32 = 10;

    /// livelock observe: unmodified kernel produced no livelock-onset event.
    pub const OBSERVE_NO_ONSET: i32 = 3;
    /// livelock observe: polled kernel falsely reported livelock onset.
    pub const OBSERVE_FALSE_ONSET: i32 = 4;
    /// livelock observe: starvation-watch contrast failed.
    pub const OBSERVE_STARVATION: i32 = 5;
    /// livelock observe: per-flow ledger leaked or did not close.
    pub const OBSERVE_FLOW_LEDGER: i32 = 6;

    /// perf: any perf-harness failure (perturbation, schema, budget).
    pub const PERF_FAILURE: i32 = 1;

    /// simlint: usage error (unknown flag).
    pub const SIMLINT_USAGE: i32 = 2;
    /// simlint: I/O error (unreadable workspace or baseline).
    pub const SIMLINT_IO: i32 = 3;
    /// simlint: --fix --dry-run found fixable findings.
    pub const SIMLINT_FIXABLE: i32 = 4;
}

/// One registered exit code.
#[derive(Clone, Debug)]
pub struct ExitEntry {
    /// The process (or subcommand) that exits with this code.
    pub owner: &'static str,
    /// Short kebab-case name (the constant's name for Rust-side codes).
    pub name: &'static str,
    /// The exit code. Unique per owner; 0 (success) is never registered.
    pub code: i32,
    /// What the code means, one line.
    pub meaning: &'static str,
    /// The `codes::` constant backing this entry, if it is a Rust-side
    /// code whose references the staleness check can count.
    pub constant: Option<&'static str>,
}

const fn e(
    owner: &'static str,
    name: &'static str,
    code: i32,
    meaning: &'static str,
    constant: Option<&'static str>,
) -> ExitEntry {
    ExitEntry {
        owner,
        name,
        code,
        meaning,
        constant,
    }
}

/// The static half of the registry: every exit code except simlint's
/// rule codes (those are generated from the rule registry so the two
/// can never drift).
pub const STATIC_ENTRIES: &[ExitEntry] = &[
    // ci.sh gates (checked as `exit N` literals in the script).
    e("ci.sh", "build-test-io", 1, "build/test failure, unwritable CSVs, byte-identity mismatch across job counts, or bad arguments", None),
    e("ci.sh", "figure-shape", 2, "a rendered figure violates the paper's qualitative throughput shape", None),
    e("ci.sh", "latency-gate", 3, "figure L-1 latency gate failed (polled p99 not well below unmodified at overload)", None),
    e("ci.sh", "cpu-share-gate", 4, "figure C-1 CPU-share gate failed (cycle-ledger shares off-claim)", None),
    e("ci.sh", "fault-gate", 5, "figure R-1 fault gate failed (graceful-degradation claim violated)", None),
    e("ci.sh", "chaos-smoke", 6, "the chaos smoke run failed (see `livelock chaos` codes)", None),
    e("ci.sh", "simlint-gate", 7, "simlint found a non-baselined finding (run `cargo run -p lint` for the per-rule code)", None),
    e("ci.sh", "perf-smoke", 8, "the perf smoke failed (schema mismatch or throughput collapse vs the committed trajectory)", None),
    e("ci.sh", "smp-gate", 9, "figure S-1 SMP gate failed (MLFRR scaling or per-CPU ledger conservation)", None),
    e("ci.sh", "observe-gate", 10, "figure O-1 online-detection gate failed (onset/starvation claims or byte-identity)", None),
    e("ci.sh", "observe-smoke", 11, "the observe smoke failed (see `livelock observe` codes, or observability overhead over budget)", None),
    e("ci.sh", "priority-gate", 12, "figure P-1 priority-isolation gate failed (Control SLO, shedding order, or byte-identity)", None),
    // figures binary.
    e("figures", "io-or-args", codes::FIGURES_IO, "unwritable results/ directory, bad --jobs, or collected CSV write errors", Some("FIGURES_IO")),
    e("figures", "shape", codes::FIGURES_SHAPE, "a throughput figure violates the paper's qualitative shape", Some("FIGURES_SHAPE")),
    e("figures", "latency", codes::FIGURES_LATENCY, "figure L-1: polled p99 forwarding latency not well below unmodified at overload", Some("FIGURES_LATENCY")),
    e("figures", "cpu-share", codes::FIGURES_CPU, "figure C-1: conserved cycle ledger violates the CPU-share claims", Some("FIGURES_CPU")),
    e("figures", "fault", codes::FIGURES_FAULT, "figure R-1: seeded fault storm violates graceful degradation", Some("FIGURES_FAULT")),
    e("figures", "smp", codes::FIGURES_SMP, "figure S-1: MLFRR scaling or per-CPU ledger conservation off-claim", Some("FIGURES_SMP")),
    e("figures", "observe", codes::FIGURES_OBSERVE, "figure O-1: online-detection claims violated", Some("FIGURES_OBSERVE")),
    e("figures", "priority", codes::FIGURES_PRIORITY, "figure P-1: priority-isolation claims violated", Some("FIGURES_PRIORITY")),
    // livelock binary (shared usage path).
    e("livelock", "usage", codes::LIVELOCK_USAGE, "unknown subcommand or malformed flags (any subcommand)", Some("LIVELOCK_USAGE")),
    // livelock chaos invariants.
    e("livelock chaos", "no-delivery", codes::CHAOS_NO_DELIVERY, "polled kernel delivered nothing (fault-induced livelock)", Some("CHAOS_NO_DELIVERY")),
    e("livelock chaos", "gate-inhibited", codes::CHAOS_GATE_INHIBITED, "interrupt gate ended the run inhibited", Some("CHAOS_GATE_INHIBITED")),
    e("livelock chaos", "screend-backlog", codes::CHAOS_SCREEND_BACKLOG, "screend queue still holds packets after the drain window", Some("CHAOS_SCREEND_BACKLOG")),
    e("livelock chaos", "ledger-leak", codes::CHAOS_LEDGER_LEAK, "conservation ledger leaves packets unaccounted", Some("CHAOS_LEDGER_LEAK")),
    e("livelock chaos", "faults-missing", codes::CHAOS_FAULTS_MISSING, "fewer faults fired than were scheduled", Some("CHAOS_FAULTS_MISSING")),
    e("livelock chaos", "not-livelocked", codes::CHAOS_NOT_LIVELOCKED, "unmodified kernel is not livelocked under the same storm", Some("CHAOS_NOT_LIVELOCKED")),
    e("livelock chaos", "priority-inversion", codes::CHAOS_PRIORITY_INVERSION, "--priority: classified polled kernel produced a priority-inversion event", Some("CHAOS_PRIORITY_INVERSION")),
    e("livelock chaos", "no-inversion-contrast", codes::CHAOS_NO_INVERSION_CONTRAST, "--priority: unmodified kernel produced no inversion (contrast missing)", Some("CHAOS_NO_INVERSION_CONTRAST")),
    // livelock observe invariants.
    e("livelock observe", "no-onset", codes::OBSERVE_NO_ONSET, "unmodified kernel produced no livelock-onset event", Some("OBSERVE_NO_ONSET")),
    e("livelock observe", "false-onset", codes::OBSERVE_FALSE_ONSET, "polled kernel with feedback reported livelock onset", Some("OBSERVE_FALSE_ONSET")),
    e("livelock observe", "starvation", codes::OBSERVE_STARVATION, "starvation-watch contrast failed between kernels", Some("OBSERVE_STARVATION")),
    e("livelock observe", "flow-ledger", codes::OBSERVE_FLOW_LEDGER, "per-flow ledger leaked arrivals or did not close", Some("OBSERVE_FLOW_LEDGER")),
    // perf binary.
    e("perf", "failure", codes::PERF_FAILURE, "perturbation detected, schema mismatch, bad arguments, or budget exceeded", Some("PERF_FAILURE")),
    // simlint's non-rule codes (the rule codes are generated below).
    e("simlint", "usage", codes::SIMLINT_USAGE, "usage error (unknown flag)", Some("SIMLINT_USAGE")),
    e("simlint", "io", codes::SIMLINT_IO, "I/O error (unreadable workspace or baseline)", Some("SIMLINT_IO")),
    e("simlint", "fixable", codes::SIMLINT_FIXABLE, "--fix --dry-run found fixable findings on the tree", Some("SIMLINT_FIXABLE")),
];

/// Owned form of an entry, for the generated simlint rule codes.
#[derive(Clone, Debug)]
pub struct Entry {
    /// See [`ExitEntry::owner`].
    pub owner: String,
    /// See [`ExitEntry::name`].
    pub name: String,
    /// See [`ExitEntry::code`].
    pub code: i32,
    /// See [`ExitEntry::meaning`].
    pub meaning: String,
    /// See [`ExitEntry::constant`].
    pub constant: Option<String>,
}

/// The full registry: the static table plus one generated entry per
/// simlint rule (so the rule registry and this table cannot drift),
/// sorted by (owner, code).
pub fn entries() -> Vec<Entry> {
    let mut out: Vec<Entry> = STATIC_ENTRIES
        .iter()
        .map(|e| Entry {
            owner: e.owner.to_string(),
            name: e.name.to_string(),
            code: e.code,
            meaning: e.meaning.to_string(),
            constant: e.constant.map(str::to_string),
        })
        .collect();
    for r in rules::all_rules() {
        out.push(Entry {
            owner: "simlint".to_string(),
            name: r.id().to_string(),
            code: r.exit_code(),
            meaning: r.describe().to_string(),
            constant: None,
        });
    }
    out.push(Entry {
        owner: "simlint".to_string(),
        name: rules::BAD_SUPPRESSION_RULE.to_string(),
        code: rules::EXIT_BAD_SUPPRESSION,
        meaning: "malformed `// simlint: allow(rule): reason` directive".to_string(),
        constant: None,
    });
    out.push(Entry {
        owner: "simlint".to_string(),
        name: "multiple-rules".to_string(),
        code: rules::EXIT_MULTIPLE_RULES,
        meaning: "fresh findings across multiple rules".to_string(),
        constant: None,
    });
    out.sort_by(|a, b| (a.owner.as_str(), a.code).cmp(&(b.owner.as_str(), b.code)));
    out
}

/// Renders the registry as the markdown table embedded in README.md
/// (regenerate with `simlint --exit-codes`).
pub fn markdown_table() -> String {
    let mut out = String::from("| owner | code | name | meaning |\n|---|---|---|---|\n");
    for e in entries() {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            e.owner, e.code, e.name, e.meaning
        ));
    }
    out
}

/// Registry self-consistency problems (duplicate codes per owner,
/// duplicate names, registered success codes). Empty on a healthy
/// table; reported under the `exit-code-registry` rule.
pub fn consistency_problems() -> Vec<String> {
    let mut problems = Vec::new();
    let all = entries();
    for (i, a) in all.iter().enumerate() {
        if a.code == 0 {
            problems.push(format!(
                "entry `{}`/{} registers exit code 0 — success is never registered",
                a.owner, a.name
            ));
        }
        for b in &all[i + 1..] {
            if a.owner == b.owner && a.code == b.code {
                problems.push(format!(
                    "owner `{}` registers code {} twice (`{}` and `{}`)",
                    a.owner, a.code, a.name, b.name
                ));
            }
            if a.owner == b.owner && a.name == b.name {
                problems.push(format!(
                    "owner `{}` registers name `{}` twice (codes {} and {})",
                    a.owner, a.name, a.code, b.code
                ));
            }
        }
    }
    problems
}

/// Where the registry lives (the one file exempt from the constant
/// liveness check — the definitions themselves are not references).
pub const REGISTRY_PATH: &str = "crates/lint/src/registry.rs";

/// The workspace half of the `exit-code-registry` rule. Runs once per
/// workspace lint, after baseline partitioning — registry drift is
/// never baselineable or suppressible:
///
/// * registry self-consistency ([`consistency_problems`]);
/// * constant liveness: every entry backed by a [`codes`] constant must
///   be referenced somewhere outside the registry itself;
/// * `scripts/ci.sh` cross-check: every command-position `exit N` in
///   the script is registered under owner `ci.sh`, and every registered
///   `ci.sh` code still appears in the script.
///
/// A tree without `scripts/ci.sh` (fixtures, scratch copies of a
/// subtree) simply skips the script cross-check.
pub fn check_workspace(root: &Path, sources: &[(FileInfo, String)]) -> Vec<Finding> {
    let rule = rules::EXIT_CODE_REGISTRY_RULE;
    let mut out = Vec::new();
    for p in consistency_problems() {
        out.push(Finding {
            rule: rule.to_string(),
            file: REGISTRY_PATH.to_string(),
            line: 0,
            snippet: "registry-consistency".to_string(),
            message: p,
        });
    }
    let all = entries();
    for entry in &all {
        let Some(constant) = &entry.constant else {
            continue;
        };
        let live = sources
            .iter()
            .any(|(info, src)| info.rel_path != REGISTRY_PATH && src.contains(constant.as_str()));
        if !live {
            out.push(Finding {
                rule: rule.to_string(),
                file: REGISTRY_PATH.to_string(),
                line: 0,
                snippet: format!("codes::{constant}"),
                message: format!(
                    "stale registry entry `{}`/{}: constant `{constant}` is referenced nowhere outside the registry — delete the entry or wire the exit path back up",
                    entry.owner, entry.name
                ),
            });
        }
    }
    let ci = root.join("scripts").join("ci.sh");
    if let Ok(text) = std::fs::read_to_string(&ci) {
        let found = shell_exit_codes(&text);
        let registered: BTreeSet<i32> = all
            .iter()
            .filter(|e| e.owner == "ci.sh")
            .map(|e| e.code)
            .collect();
        for &(line, code) in &found {
            if code != 0 && !registered.contains(&code) {
                out.push(Finding {
                    rule: rule.to_string(),
                    file: "scripts/ci.sh".to_string(),
                    line,
                    snippet: format!("exit {code}"),
                    message: format!(
                        "unregistered ci.sh exit code {code}: add it to crates/lint/src/registry.rs with an owner and meaning"
                    ),
                });
            }
        }
        let present: BTreeSet<i32> = found.iter().map(|&(_, c)| c).collect();
        for entry in all.iter().filter(|e| e.owner == "ci.sh") {
            if !present.contains(&entry.code) {
                out.push(Finding {
                    rule: rule.to_string(),
                    file: REGISTRY_PATH.to_string(),
                    line: 0,
                    snippet: format!("ci.sh {}", entry.code),
                    message: format!(
                        "stale registry entry `ci.sh`/{}: scripts/ci.sh no longer exits with code {} — delete the entry",
                        entry.name, entry.code
                    ),
                });
            }
        }
    }
    out
}

/// Every `exit N` that `scripts/ci.sh` can actually execute, as
/// `(1-based line, code)`. Comments are stripped (quote-aware, so a `#`
/// inside a string survives) and `exit` only counts in command position
/// — as the first word of a line or right after a control operator —
/// so prose like `echo "rejects bad flags with exit 2"` never matches.
pub fn shell_exit_codes(text: &str) -> Vec<(u32, i32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let code_part = strip_shell_comment(line);
        let words: Vec<&str> = code_part.split_whitespace().collect();
        for (i, w) in words.iter().enumerate() {
            if *w != "exit" {
                continue;
            }
            let command_position = i == 0
                || matches!(
                    words[i - 1],
                    "||" | "&&" | ";" | "then" | "do" | "else" | "{" | "("
                );
            if !command_position {
                continue;
            }
            if let Some(next) = words.get(i + 1) {
                let trimmed = next.trim_end_matches([';', ')', '}']);
                if let Ok(n) = trimmed.parse::<i32>() {
                    out.push((idx as u32 + 1, n));
                }
            }
        }
    }
    out
}

/// Truncates a shell line at its comment, tracking quote state so `#`
/// inside a string (or `$#`) does not count.
fn strip_shell_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double => {
                let after_dollar = i > 0 && bytes[i - 1] == b'$';
                let word_start = i == 0 || bytes[i - 1].is_ascii_whitespace();
                if word_start && !after_dollar {
                    return &line[..i];
                }
            }
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let problems = consistency_problems();
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn simlint_rule_codes_are_generated_not_duplicated() {
        let all = entries();
        let simlint: Vec<&Entry> = all.iter().filter(|e| e.owner == "simlint").collect();
        // Every rule id appears exactly once with the rule's exit code.
        for r in rules::all_rules() {
            let hits: Vec<&&Entry> = simlint.iter().filter(|e| e.name == r.id()).collect();
            assert_eq!(hits.len(), 1, "rule {} registered once", r.id());
            assert_eq!(hits[0].code, r.exit_code());
        }
        // The static simlint codes never collide with the rule codes.
        let mut codes: Vec<i32> = simlint.iter().map(|e| e.code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "simlint exit codes collide");
    }

    #[test]
    fn owners_disambiguate_overlapping_codes() {
        let all = entries();
        let chaos3 = all
            .iter()
            .find(|e| e.owner == "livelock chaos" && e.code == 3)
            .unwrap();
        let observe3 = all
            .iter()
            .find(|e| e.owner == "livelock observe" && e.code == 3)
            .unwrap();
        assert_ne!(chaos3.meaning, observe3.meaning);
    }

    #[test]
    fn shell_exit_parsing_is_command_position_and_comment_aware() {
        let script = "#!/bin/sh\n\
                      # the gate uses exit 99 for nothing\n\
                      echo \"rejects bad flags with exit 2\"\n\
                      grep -q x file || exit 3\n\
                      if bad; then\n    exit 4\nfi\n\
                      run && exit 0\n\
                      printf '%s' 'exit 5'   # exit 6 in a trailing comment\n";
        let codes = shell_exit_codes(script);
        assert_eq!(codes, vec![(4, 3), (6, 4), (8, 0)], "{codes:?}");
    }

    #[test]
    fn markdown_table_lists_every_entry() {
        let table = markdown_table();
        for e in entries() {
            assert!(
                table.contains(&format!("| `{}` | {} | {} |", e.owner, e.code, e.name)),
                "missing {}/{}",
                e.owner,
                e.name
            );
        }
        assert!(table.starts_with("| owner | code | name | meaning |"));
    }

    #[test]
    fn readme_embeds_the_generated_table() {
        // README carries the table between markers so `simlint
        // --exit-codes` is the single source of truth; regenerate with
        // that flag if this fails.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint sits two levels below the root");
        let readme =
            std::fs::read_to_string(root.join("README.md")).expect("README readable");
        let begin = readme
            .find("do not edit by hand) -->\n")
            .map(|i| i + "do not edit by hand) -->\n".len())
            .expect("exit-codes begin marker present");
        let end = readme.find("<!-- exit-codes:end -->").expect("end marker present");
        assert_eq!(
            readme[begin..end],
            markdown_table(),
            "README exit-code table is stale: rerun `simlint --exit-codes`"
        );
    }
}
