//! Unit-of-measure dataflow over token streams.
//!
//! The simulator's time arithmetic flows through four bases — CPU
//! cycles, nanoseconds, microseconds, milliseconds (plus seconds at the
//! reporting edge) — and the only legal way to move between them is a
//! named `Freq` conversion. The naming convention (`_cycles`, `_ns`,
//! `_us`, `_ms` suffixes) makes the base visible in the source; this
//! module turns that convention into checkable dataflow facts:
//!
//! * [`unit_of_name`] maps an identifier to its declared unit;
//! * [`conversion`] knows the `Freq`/ledger/histogram API signatures —
//!   which unit goes in, which comes out;
//! * [`UnitEnv`] propagates units through `let` bindings inside one
//!   function body (the intra-function dataflow);
//! * [`operand_unit_left`] / [`operand_unit_right`] resolve the unit of
//!   the expression on either side of an operator.
//!
//! The unit-discipline rule combines these: an additive, comparison, or
//! assignment operator whose two sides resolve to *different* units is a
//! mixed-base bug — the class of error that corrupts figures instead of
//! crashing.

use std::collections::BTreeMap;

use crate::tokenizer::{Tok, TokKind};

/// A time base.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// CPU cycles (the simulator's native clock).
    Cycles,
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Milliseconds.
    Ms,
    /// Seconds (reporting edge only).
    Secs,
}

impl Unit {
    /// Human label for messages.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Cycles => "cycles",
            Unit::Ns => "ns",
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::Secs => "secs",
        }
    }
}

/// The unit an identifier declares through its suffix, if any.
pub fn unit_of_name(name: &str) -> Option<Unit> {
    let has = |suffix: &str| name == &suffix[1..] || name.ends_with(suffix);
    if has("_cycles") || has("_cy") {
        Some(Unit::Cycles)
    } else if has("_ns") || has("_nanos") {
        Some(Unit::Ns)
    } else if has("_us") || has("_micros") {
        Some(Unit::Us)
    } else if has("_ms") || has("_millis") {
        Some(Unit::Ms)
    } else if has("_secs") {
        Some(Unit::Secs)
    } else {
        None
    }
}

/// A known time-API signature: what unit the argument must carry and
/// what unit the call returns (`None` = unconstrained / not a time).
#[derive(Clone, Copy, Debug)]
pub struct Conversion {
    /// Required unit of the time-carrying argument, if constrained.
    pub arg: Option<Unit>,
    /// Which argument position carries the time (0-based).
    pub arg_index: usize,
    /// Unit of the return value, if it is a time.
    pub ret: Option<Unit>,
}

/// Looks up a call by its final path segment or method name.
pub fn conversion(name: &str) -> Option<Conversion> {
    let c = |arg, arg_index, ret| Some(Conversion { arg, arg_index, ret });
    match name {
        // Freq conversions: the named gates between bases.
        "cycles_from_nanos" => c(Some(Unit::Ns), 0, Some(Unit::Cycles)),
        "cycles_from_micros" => c(Some(Unit::Us), 0, Some(Unit::Cycles)),
        "cycles_from_millis" => c(Some(Unit::Ms), 0, Some(Unit::Cycles)),
        "cycles_from_secs" => c(Some(Unit::Secs), 0, Some(Unit::Cycles)),
        "nanos_from_cycles" => c(Some(Unit::Cycles), 0, Some(Unit::Ns)),
        "secs_from_cycles" => c(Some(Unit::Cycles), 0, Some(Unit::Secs)),
        // Rate → inter-arrival interval in cycles (the argument is a
        // rate, not a time, so it is unconstrained).
        "interval_for_rate" => c(None, 0, Some(Unit::Cycles)),
        // ns-per-cycle ratio: a scale factor, not a time in any base.
        "exact_nanos_per_cycle" => c(None, 0, None),
        // The cycle ledger charges cycles: `charge(class, cy)`.
        "charge" => c(Some(Unit::Cycles), 1, None),
        _ => None,
    }
}

/// Per-body unit environment: `let`-bound locals whose unit was
/// inferred from their initializer.
#[derive(Clone, Debug, Default)]
pub struct UnitEnv {
    bound: BTreeMap<String, Unit>,
}

impl UnitEnv {
    /// Resolves an identifier: declared suffix first, then the
    /// propagated binding.
    pub fn unit_of(&self, name: &str) -> Option<Unit> {
        unit_of_name(name).or_else(|| self.bound.get(name).copied())
    }

    /// Builds the environment of one body range by scanning `let`
    /// initializers. A binding whose own name declares a unit needs no
    /// inference; an undeclared name adopts its initializer's unit.
    /// Single forward pass — later bindings may use earlier ones.
    pub fn for_body(toks: &[Tok], lo: usize, hi: usize) -> UnitEnv {
        let mut env = UnitEnv::default();
        let mut i = lo;
        while i < hi {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            if unit_of_name(&name.text).is_some() {
                i = j + 1;
                continue;
            }
            // Skip an optional `: Type` annotation to the `=`.
            let mut k = j + 1;
            let mut depth = 0i32;
            while k < hi {
                let t = &toks[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('>') && !toks[k - 1].is_punct('-') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('=') && !toks.get(k + 1).is_some_and(|u| u.is_punct('=')) {
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    k = hi;
                    break;
                }
                k += 1;
            }
            if k < hi {
                if let Some(u) = operand_unit_right(toks, k + 1, hi, &env) {
                    env.bound.insert(name.text.clone(), u);
                }
            }
            i = j + 1;
        }
        env
    }
}

/// Identifiers that never terminate an operand scan even though they are
/// keywords (`self.deadline_cycles`, `x_ns as u64`).
fn transparent(t: &Tok) -> bool {
    t.is_ident("self") || t.is_ident("as") || t.is_ident("mut") || t.is_ident("ref")
}

fn is_stop_keyword(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "if" | "else" | "match" | "while" | "for" | "loop" | "return" | "break" | "continue"
                | "let" | "in" | "fn" | "move" | "where" | "unsafe"
        )
}

/// Does the token end a value (so a following `*`/`-` is binary)?
fn ends_value(t: &Tok) -> bool {
    t.kind == TokKind::Ident && !is_stop_keyword(t) && !t.is_ident("let")
        || t.kind == TokKind::Num
        || t.is_punct(')')
        || t.is_punct(']')
}

/// Resolves the unit of the operand starting at `from` (just past an
/// operator), scanning right until a lower-precedence boundary. The
/// scan continues through additive operators (they preserve units — a
/// mismatch is the rule's job at that operator); a *binary*
/// multiplicative operator makes the operand unit-unknown (scaling
/// changes units); a named conversion call decides over any suffixed
/// identifier; unknown calls hide their arguments.
pub fn operand_unit_right(toks: &[Tok], from: usize, hi: usize, env: &UnitEnv) -> Option<Unit> {
    let mut candidate = None;
    let mut locked = false;
    let mut depth = 0i32;
    let mut i = from;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct('*') || t.is_punct('/') || t.is_punct('%')) {
            // `*` after a value is multiplication; at operand start or
            // after another operator it is a deref prefix.
            if t.is_punct('/') || t.is_punct('%') || (i > from && ends_value(&toks[i - 1])) {
                return None;
            }
        } else if depth == 0
            && (t.is_punct(',')
                || t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('?')
                || t.is_punct('<')
                || t.is_punct('>')
                || t.is_punct('=')
                || t.is_punct('!')
                || t.is_punct('&')
                || t.is_punct('|')
                || t.is_punct('^'))
        {
            break;
        } else if depth == 0 && is_stop_keyword(t) {
            break;
        } else if t.kind == TokKind::Ident && !transparent(t) && depth == 0 {
            if toks.get(i + 1).is_some_and(|u| u.is_punct('(')) {
                match conversion(&t.text) {
                    // A conversion's return unit decides the operand
                    // (but keep scanning: a trailing `* 2` still
                    // un-units it).
                    Some(c) => {
                        candidate = c.ret;
                        locked = true;
                        if candidate.is_none() {
                            return None;
                        }
                    }
                    None => {}
                }
                // Arguments are not this operand's unit.
                i = skip_group(toks, i + 1, hi);
                continue;
            } else if toks.get(i + 1).is_some_and(|u| u.is_punct('!')) {
                // Macro: opaque.
                break;
            } else if !locked && candidate.is_none() {
                candidate = env.unit_of(&t.text);
            }
        }
        i += 1;
    }
    candidate
}

/// Resolves the unit of the operand ending just before `at` (an
/// operator token), scanning left with the same rules as
/// [`operand_unit_right`].
pub fn operand_unit_left(toks: &[Tok], lo: usize, at: usize, env: &UnitEnv) -> Option<Unit> {
    let mut candidate: Option<Unit> = None;
    let mut i = at;
    while i > lo {
        i -= 1;
        let t = &toks[i];
        if t.is_punct(')') || t.is_punct(']') {
            // A call or a grouping bracket: find the opener, skip the
            // contents (call arguments are not this operand's unit).
            let Some(open) = matching_left(toks, lo, i) else {
                break;
            };
            match toks.get(open.wrapping_sub(1)) {
                Some(n) if open > lo && n.kind == TokKind::Ident && !is_stop_keyword(n) => {
                    if let Some(c) = conversion(&n.text) {
                        if candidate.is_none() {
                            candidate = c.ret;
                        }
                        if c.ret.is_none() {
                            return None;
                        }
                    }
                    // Continue past the call name into the receiver
                    // chain (`a_ns.max(b) + …`).
                    i = open - 1;
                }
                _ if t.is_punct(')') => {
                    // Grouping paren: its contents are the operand.
                    if candidate.is_none() {
                        candidate = operand_unit_right(toks, open + 1, i, env);
                    }
                    i = open;
                }
                _ => {
                    // Indexing `xs[i]`: skip to the opener.
                    i = open;
                }
            }
            continue;
        }
        if t.is_punct('*') || t.is_punct('/') || t.is_punct('%') {
            if t.is_punct('/') || t.is_punct('%') || (i > lo && ends_value(&toks[i - 1])) {
                return None;
            }
            continue;
        }
        if t.is_punct('+') || (t.is_punct('-') && i > lo && ends_value(&toks[i - 1])) {
            // Additive: the operand extends left, units preserved.
            continue;
        }
        if t.is_punct('.') || t.is_punct(':') || t.kind == TokKind::Num || t.is_punct('-') {
            continue;
        }
        if t.kind == TokKind::Ident {
            if is_stop_keyword(t) || t.is_ident("let") {
                break;
            }
            if transparent(t) {
                continue;
            }
            if toks.get(i + 1).is_some_and(|u| u.is_punct('!')) {
                // Macro name: opaque.
                return None;
            }
            if candidate.is_none() {
                candidate = env.unit_of(&t.text);
            }
            continue;
        }
        // Any other punctuation (`<`, `=`, `,`, `;`, `{`, `(`, `&`, …)
        // bounds the operand.
        break;
    }
    candidate
}

/// Index one past the group opened at `open` (which holds `(` or `[`).
fn skip_group(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

/// Index of the `(` matching the `)` at `close`, scanning left.
fn matching_left(toks: &[Tok], lo: usize, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close + 1;
    while i > lo {
        i -= 1;
        let t = &toks[i];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).toks
    }

    #[test]
    fn names_declare_units() {
        assert_eq!(unit_of_name("deadline_cycles"), Some(Unit::Cycles));
        assert_eq!(unit_of_name("p99_ns"), Some(Unit::Ns));
        assert_eq!(unit_of_name("slo_p99_us"), Some(Unit::Us));
        assert_eq!(unit_of_name("window_ms"), Some(Unit::Ms));
        assert_eq!(unit_of_name("elapsed_secs"), Some(Unit::Secs));
        assert_eq!(unit_of_name("cycles"), Some(Unit::Cycles));
        assert_eq!(unit_of_name("budget"), None);
        assert_eq!(unit_of_name("resums"), None, "suffix must be _-delimited");
    }

    #[test]
    fn conversions_know_their_signatures() {
        let c = conversion("cycles_from_nanos").unwrap();
        assert_eq!(c.arg, Some(Unit::Ns));
        assert_eq!(c.ret, Some(Unit::Cycles));
        let c = conversion("charge").unwrap();
        assert_eq!(c.arg_index, 1);
        assert_eq!(c.arg, Some(Unit::Cycles));
        assert!(conversion("max").is_none());
    }

    #[test]
    fn right_operand_resolution() {
        let env = UnitEnv::default();
        let ts = toks("x < deadline_cycles ;");
        assert_eq!(operand_unit_right(&ts, 2, ts.len(), &env), Some(Unit::Cycles));
        let ts = toks("x < freq.nanos_from_cycles(c) ;");
        assert_eq!(operand_unit_right(&ts, 2, ts.len(), &env), Some(Unit::Ns));
        let ts = toks("x < self.slo_p99_us + 1.0 ;");
        assert_eq!(operand_unit_right(&ts, 2, ts.len(), &env), Some(Unit::Us));
        // Unknown calls hide their arguments.
        let ts = toks("x < clamp(y_ns) ;");
        assert_eq!(operand_unit_right(&ts, 2, ts.len(), &env), None);
    }

    #[test]
    fn left_operand_resolution() {
        let env = UnitEnv::default();
        let ts = toks("self.deadline_cycles = x");
        let eq = ts.iter().position(|t| t.is_punct('=')).unwrap();
        assert_eq!(operand_unit_left(&ts, 0, eq, &env), Some(Unit::Cycles));
        let ts = toks("freq.nanos_from_cycles(c) < x");
        let lt = ts.iter().position(|t| t.is_punct('<')).unwrap();
        assert_eq!(operand_unit_left(&ts, 0, lt, &env), Some(Unit::Ns));
        // Method chains walk back to the unit-bearing receiver.
        let ts = toks("lat_ns.max(floor) < x");
        let lt = ts.iter().position(|t| t.is_punct('<')).unwrap();
        assert_eq!(operand_unit_left(&ts, 0, lt, &env), Some(Unit::Ns));
        let ts = toks("count < x");
        let lt = ts.iter().position(|t| t.is_punct('<')).unwrap();
        assert_eq!(operand_unit_left(&ts, 0, lt, &env), None);
    }

    #[test]
    fn let_bindings_propagate_units() {
        let ts = toks("{ let deadline = freq.cycles_from_micros(slo); let other = deadline; }");
        let env = UnitEnv::for_body(&ts, 0, ts.len());
        assert_eq!(env.unit_of("deadline"), Some(Unit::Cycles));
        assert_eq!(env.unit_of("other"), Some(Unit::Cycles), "bindings chain");
    }

    #[test]
    fn declared_suffix_beats_binding() {
        let ts = toks("{ let x_ns = freq.cycles_from_micros(s); }");
        let env = UnitEnv::for_body(&ts, 0, ts.len());
        // The declared suffix stands; the mismatch is the rule's job to
        // report, not the environment's to paper over.
        assert_eq!(env.unit_of("x_ns"), Some(Unit::Ns));
    }
}
