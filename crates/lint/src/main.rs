//! The `simlint` binary: lint the workspace, gate CI.
//!
//! Usage: `cargo run -p lint [-- flags]` or `target/release/simlint`.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::baseline::Baseline;
use lint::files::find_workspace_root;
use lint::registry::codes;
use lint::{fix, registry, report, rules};

const USAGE: &str = "\
simlint — static-analysis gate for the receive-livelock workspace

USAGE:
    simlint [OPTIONS]

OPTIONS:
    --json              emit the machine-readable JSON report
    --format <FMT>      report format: human (default), json, or sarif
    --fix               apply mechanical fixes (deprecated-config
                        builder rewrite, suppression normalization)
    --dry-run           with --fix: print the would-be diff, write
                        nothing; exit 4 if any fix is pending
    --write-baseline    rewrite the baseline file to absorb all current
                        findings (then exit 0); review the diff before
                        committing — the baseline should only shrink
    --baseline <PATH>   baseline file (default: crates/lint/baseline.txt)
    --root <PATH>       workspace root (default: walk up from the cwd)
    --list-rules        print every rule with its exit code and exit
    --exit-codes        print the workspace exit-code registry as the
                        markdown table embedded in README.md and exit

EXIT CODES:
    0 clean   2 usage   3 I/O error   4 fixable (--fix --dry-run)
    9 multiple rules   10..22 one code per rule (see --list-rules);
    the full cross-binary registry is `--exit-codes`
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Opts {
    format: Format,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
    exit_codes: bool,
    fix: bool,
    dry_run: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        format: Format::Human,
        write_baseline: false,
        baseline: None,
        root: None,
        list_rules: false,
        exit_codes: false,
        fix: false,
        dry_run: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.format = Format::Json,
            "--format" => {
                opts.format = match args.next().ok_or("--format needs a value")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--fix" => opts.fix = true,
            "--dry-run" => opts.dry_run = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--exit-codes" => opts.exit_codes = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a path")?.into());
            }
            "--root" => opts.root = Some(args.next().ok_or("--root needs a path")?.into()),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.dry_run && !opts.fix {
        return Err("--dry-run only makes sense with --fix".to_string());
    }
    Ok(opts)
}

/// Clamps an i32 exit code into `ExitCode` without panicking; codes
/// that do not fit a u8 collapse to the multiple-rules code.
fn to_exit(code: i32) -> ExitCode {
    u8::try_from(code).map_or_else(
        |_| to_exit(rules::EXIT_MULTIPLE_RULES),
        ExitCode::from,
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: {e}\n\n{USAGE}");
            return to_exit(codes::SIMLINT_USAGE);
        }
    };

    if opts.list_rules {
        for r in rules::all_rules() {
            println!("{:>3}  {:<22} {}", r.exit_code(), r.id(), r.describe());
        }
        println!(
            "{:>3}  {:<22} malformed `// simlint: allow(rule): reason` directive",
            rules::EXIT_BAD_SUPPRESSION,
            rules::BAD_SUPPRESSION_RULE
        );
        return ExitCode::SUCCESS;
    }

    if opts.exit_codes {
        print!("{}", registry::markdown_table());
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: could not find a workspace root (pass --root)");
            return to_exit(codes::SIMLINT_IO);
        }
    };

    if opts.fix {
        let outcome = match fix::fix_workspace(&root, opts.dry_run) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("simlint: fix failed: {e}");
                return to_exit(codes::SIMLINT_IO);
            }
        };
        if outcome.files.is_empty() {
            println!("simlint: nothing to fix");
            return ExitCode::SUCCESS;
        }
        if opts.dry_run {
            print!("{}", outcome.diff);
            println!(
                "simlint: {} pending fix(es) in {} file(s) — run --fix to apply",
                outcome.edit_count(),
                outcome.files.len()
            );
            return to_exit(codes::SIMLINT_FIXABLE);
        }
        for (file, n) in &outcome.files {
            println!("simlint: fixed {file} ({n} edit(s))");
        }
        return ExitCode::SUCCESS;
    }

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("crates/lint/baseline.txt"));

    if opts.write_baseline {
        // Lint against an empty baseline, then absorb everything active.
        let result = match lint::lint_workspace(&root, &Baseline::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simlint: scan failed: {e}");
                return to_exit(codes::SIMLINT_IO);
            }
        };
        let text = Baseline::render(&result.fresh);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("simlint: cannot write {}: {e}", baseline_path.display());
            return to_exit(codes::SIMLINT_IO);
        }
        println!(
            "simlint: wrote {} entr{} to {}",
            result.fresh.len(),
            if result.fresh.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", baseline_path.display());
            return to_exit(codes::SIMLINT_IO);
        }
    };
    let result = match lint::lint_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return to_exit(codes::SIMLINT_IO);
        }
    };

    match opts.format {
        Format::Json => print!("{}", report::json(&result)),
        Format::Sarif => print!("{}", report::sarif(&result)),
        Format::Human => print!("{}", report::human(&result)),
    }
    to_exit(report::exit_code(&result))
}
