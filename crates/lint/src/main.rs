//! The `simlint` binary: lint the workspace, gate CI.
//!
//! Usage: `cargo run -p lint [-- flags]` or `target/release/simlint`.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::baseline::Baseline;
use lint::files::find_workspace_root;
use lint::{report, rules};

const USAGE: &str = "\
simlint — static-analysis gate for the receive-livelock workspace

USAGE:
    simlint [OPTIONS]

OPTIONS:
    --json              emit the machine-readable JSON report
    --write-baseline    rewrite the baseline file to absorb all current
                        findings (then exit 0); review the diff before
                        committing — the baseline should only shrink
    --baseline <PATH>   baseline file (default: crates/lint/baseline.txt)
    --root <PATH>       workspace root (default: walk up from the cwd)
    --list-rules        print every rule with its exit code and exit

EXIT CODES:
    0   clean    2   usage    3   I/O error    9   multiple rules
    10  determinism          11  drop-accounting
    12  interrupt-discipline 13  ledger-discipline
    14  panic-freedom        15  deprecated-config
    16  bad-suppression
";

struct Opts {
    json: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        write_baseline: false,
        baseline: None,
        root: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a path")?.into());
            }
            "--root" => opts.root = Some(args.next().ok_or("--root needs a path")?.into()),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simlint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::all_rules() {
            println!("{:>3}  {:<22} {}", r.exit_code(), r.id(), r.describe());
        }
        println!(
            "{:>3}  {:<22} malformed `// simlint: allow(rule): reason` directive",
            rules::EXIT_BAD_SUPPRESSION,
            rules::BAD_SUPPRESSION_RULE
        );
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: could not find a workspace root (pass --root)");
            return ExitCode::from(3);
        }
    };
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("crates/lint/baseline.txt"));

    if opts.write_baseline {
        // Lint against an empty baseline, then absorb everything active.
        let result = match lint::lint_workspace(&root, &Baseline::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("simlint: scan failed: {e}");
                return ExitCode::from(3);
            }
        };
        let text = Baseline::render(&result.fresh);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("simlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(3);
        }
        println!(
            "simlint: wrote {} entr{} to {}",
            result.fresh.len(),
            if result.fresh.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("simlint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(3);
        }
    };
    let result = match lint::lint_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: scan failed: {e}");
            return ExitCode::from(3);
        }
    };

    if opts.json {
        print!("{}", report::json(&result));
    } else {
        print!("{}", report::human(&result));
    }
    let code = report::exit_code(&result);
    u8::try_from(code).map_or(ExitCode::from(9), ExitCode::from)
}
