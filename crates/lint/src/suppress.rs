//! Inline suppressions: `// simlint: allow(rule): reason`.
//!
//! A suppression silences findings of one named rule on its own line or
//! on the line directly below it (so it can sit as a trailing comment or
//! on the preceding line). The reason is mandatory — an allow without a
//! justification is itself reported, as rule `bad-suppression`, because
//! an unexplained exemption is exactly the kind of silent convention this
//! tool exists to remove.

use crate::tokenizer::LintComment;

/// One parsed suppression directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the directive sits on.
    pub line: u32,
}

/// A directive that mentioned `simlint:` but did not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadSuppression {
    /// 1-based line of the malformed directive.
    pub line: u32,
    /// Why it was rejected.
    pub problem: String,
}

/// The parsed suppressions of one file.
#[derive(Clone, Debug, Default)]
pub struct Suppressions {
    /// Well-formed directives.
    pub allows: Vec<Suppression>,
    /// Malformed directives (reported as findings).
    pub bad: Vec<BadSuppression>,
}

impl Suppressions {
    /// Is a finding of `rule` at `line` suppressed? A directive covers
    /// its own line and the following line.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

/// Parses every `simlint:` comment of a file. `known_rules` validates the
/// rule name so a typo cannot silently allow nothing.
pub fn parse(comments: &[LintComment], known_rules: &[&str]) -> Suppressions {
    let mut out = Suppressions::default();
    for c in comments {
        // Doc comments (`///` and `//!` — their text starts with the
        // third `/` or the `!`) are documentation: they may quote the
        // directive syntax verbatim without being directives.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("simlint:") else {
            continue;
        };
        let body = c.text[at + "simlint:".len()..].trim();
        if body.is_empty() {
            // Prose that happens to end with the marker (docs about the
            // tool); nothing follows, so it cannot be an attempted
            // directive.
            continue;
        }
        match parse_directive(body, known_rules) {
            Ok((rule, reason)) => out.allows.push(Suppression {
                rule,
                reason,
                line: c.line,
            }),
            Err(problem) => out.bad.push(BadSuppression {
                line: c.line,
                problem,
            }),
        }
    }
    out
}

fn parse_directive(body: &str, known_rules: &[&str]) -> Result<(String, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(rule): reason`, got `{body}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `(` in allow directive".to_string())?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return Err("empty rule name in allow(...)".to_string());
    }
    if !known_rules.contains(&rule.as_str()) {
        return Err(format!("unknown rule `{rule}`"));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!("allow({rule}) needs a reason: `allow({rule}): why`"));
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["panic-freedom", "determinism"];

    fn comment(text: &str, line: u32) -> LintComment {
        LintComment {
            text: text.to_string(),
            line,
            span: (0, 0),
            line_comment: true,
        }
    }

    #[test]
    fn well_formed_directive_parses() {
        let s = parse(
            &[comment(" simlint: allow(panic-freedom): invariant upheld by caller", 7)],
            RULES,
        );
        assert!(s.bad.is_empty());
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rule, "panic-freedom");
        assert_eq!(s.allows[0].reason, "invariant upheld by caller");
        assert!(s.covers("panic-freedom", 7), "own line");
        assert!(s.covers("panic-freedom", 8), "next line");
        assert!(!s.covers("panic-freedom", 9));
        assert!(!s.covers("determinism", 7), "other rules unaffected");
    }

    #[test]
    fn missing_reason_is_rejected() {
        let s = parse(&[comment(" simlint: allow(panic-freedom)", 3)], RULES);
        assert!(s.allows.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].problem.contains("reason"));

        let s = parse(&[comment(" simlint: allow(panic-freedom):   ", 3)], RULES);
        assert_eq!(s.bad.len(), 1, "blank reason is still missing");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let s = parse(&[comment(" simlint: allow(panics): oops", 3)], RULES);
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].problem.contains("unknown rule"));
    }

    #[test]
    fn garbage_directive_is_rejected() {
        let s = parse(&[comment(" simlint: disable everything", 3)], RULES);
        assert_eq!(s.bad.len(), 1);
    }

    #[test]
    fn doc_comments_quoting_the_syntax_are_prose() {
        // Outer doc comment: the text starts with the third slash.
        let s = parse(&[comment("/ simlint: usage error (unknown flag).", 3)], RULES);
        assert!(s.allows.is_empty());
        assert!(s.bad.is_empty());
        // Inner doc comment: the text starts with the bang.
        let s = parse(&[comment("! quote `// simlint: allow(rule): reason` here", 3)], RULES);
        assert!(s.bad.is_empty());
        // A doc comment cannot suppress either.
        let s = parse(&[comment("/ simlint: allow(panic-freedom): not a directive", 3)], RULES);
        assert!(s.allows.is_empty());
    }

    #[test]
    fn trailing_mention_with_nothing_after_it_is_prose() {
        let s = parse(&[comment(" doc comments may talk about simlint:", 3)], RULES);
        assert!(s.allows.is_empty());
        assert!(s.bad.is_empty());
    }
}
