//! Rule `drop-accounting`: `KernelStats::record_drop` is the sole
//! mutation path for drop counters.
//!
//! The paper's throughput claims are *delivered* throughput; they are
//! only honest if every lost packet is accounted. The typed
//! `DropReason` taxonomy and the legacy per-queue counters are kept in
//! lockstep by `record_drop`, so any direct push to a legacy counter
//! would silently fork the two views. The counter fields are private,
//! which stops external crates at compile time; this rule is the belt to
//! that suspender — it also catches future code *inside*
//! `crates/kernel`, where privacy alone would not.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{raw, RawFinding, Rule};

/// The legacy per-queue counters `record_drop` double-bookkeeps.
const DROP_COUNTERS: &[&str] = &[
    "rx_ring_drops",
    "ipintrq_drops",
    "screend_q_drops",
    "socket_q_drops",
    "ifq_drops",
];

/// The one file allowed to mutate them.
const ACCOUNTING_FILE: &str = "crates/kernel/src/stats.rs";

pub struct DropAccounting;

impl Rule for DropAccounting {
    fn id(&self) -> &'static str {
        "drop-accounting"
    }

    fn exit_code(&self) -> i32 {
        11
    }

    fn exempt_test_code(&self) -> bool {
        // Tests must not bypass the taxonomy either: a test that pushes a
        // raw counter would assert the forked state this rule prevents.
        false
    }

    fn describe(&self) -> &'static str {
        "legacy drop counters may only be mutated by KernelStats::record_drop"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        if file.rel_path == ACCOUNTING_FILE {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if !toks[i].is_punct('.') {
                continue;
            }
            let Some(name) = toks.get(i + 1).and_then(|t| {
                DROP_COUNTERS
                    .iter()
                    .find(|c| t.is_ident(c))
                    .copied()
            }) else {
                continue;
            };
            if let Some(op) = mutation_op(toks, i + 2) {
                out.push(raw(
                    toks,
                    i,
                    format!(".{name} {op}"),
                    format!(
                        "direct mutation of legacy drop counter `{name}` bypasses \
                         KernelStats::record_drop and forks the DropReason taxonomy \
                         from the per-queue counters"
                    ),
                ));
            }
        }
        out
    }
}

/// Is the token at `i` a mutating assignment operator (`=`, `+=`, `-=`,
/// `*=`, …) as opposed to a comparison (`==`) or method call?
fn mutation_op(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = toks.get(i)?;
    let next_is_eq = |k: usize| toks.get(k).is_some_and(|t| t.is_punct('='));
    if t.is_punct('=') {
        // `==` is a comparison; a lone `=` is an assignment.
        return if next_is_eq(i + 1) { None } else { Some("=") };
    }
    for (ch, op) in [('+', "+="), ('-', "-="), ('*', "*="), ('/', "/="), ('%', "%="), ('|', "|="), ('&', "&="), ('^', "^=")] {
        if t.is_punct(ch) && next_is_eq(i + 1) {
            return Some(op);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        DropAccounting.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_direct_increment_and_assignment() {
        let f = run(
            "crates/kernel/src/router/mod.rs",
            "self.stats.rx_ring_drops += 1; stats.ifq_drops = 7;",
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].snippet, ".rx_ring_drops +=");
        assert_eq!(f[1].snippet, ".ifq_drops =");
    }

    #[test]
    fn reads_comparisons_and_getters_are_fine() {
        let f = run(
            "crates/kernel/src/router/mod.rs",
            "let n = s.rx_ring_drops(); if s.ipintrq_drops == 3 { } assert_eq!(x, s.ifq_drops);",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stats_rs_itself_is_exempt() {
        assert!(run("crates/kernel/src/stats.rs", "self.rx_ring_drops += 1;").is_empty());
    }

    #[test]
    fn tests_are_not_exempt() {
        assert!(!DropAccounting.exempt_test_code());
        let f = run("tests/cross_crate.rs", "stats.socket_q_drops += 1;");
        assert_eq!(f.len(), 1);
    }
}
