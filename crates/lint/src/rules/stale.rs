//! stale-baseline: every baseline entry must still match the tree.
//!
//! The baseline exists to grandfather findings while they are burned
//! down; once the underlying code is fixed, the entry must leave the
//! file. An entry that no longer absorbs anything is a loaded gun — if
//! an identical violation is ever reintroduced, the stale entry would
//! silently absorb it and the gate would wave the regression through.
//! This rule turns unspent entries into failures (exit 22).
//!
//! Unlike every other rule, staleness is a property of the *workspace
//! run*, not of any one file: the engine computes the unspent entries
//! in [`crate::lint_workspace`] (via `Baseline::partition_stale`) and
//! reports them under this rule's id. The `check` methods here are
//! intentionally empty — this type exists so the rule has a registry
//! entry, an exit code, and a `--list-rules` line like any other.

use crate::files::FileInfo;
use crate::rules::{RawFinding, Rule};
use crate::tokenizer::Tok;

/// The stale-baseline rule (engine-evaluated).
pub struct StaleBaseline;

/// Exit code for stale baseline entries.
pub const EXIT_STALE_BASELINE: i32 = 22;

/// Rule id under which the engine reports unspent baseline entries.
pub const STALE_BASELINE_RULE: &str = "stale-baseline";

impl Rule for StaleBaseline {
    fn id(&self) -> &'static str {
        STALE_BASELINE_RULE
    }

    fn exit_code(&self) -> i32 {
        EXIT_STALE_BASELINE
    }

    fn exempt_test_code(&self) -> bool {
        false
    }

    fn describe(&self) -> &'static str {
        "baseline entries that no longer match the tree must be deleted"
    }

    fn check(&self, _file: &FileInfo, _toks: &[Tok]) -> Vec<RawFinding> {
        Vec::new()
    }
}
