//! Rule `flow-discipline`: per-flow metrics only via the stats hooks.
//!
//! The per-flow observability layer (DESIGN.md §13) proves a conservation
//! law: attributed + unattributed + overflow arrivals equal the kernel's
//! arrival count, and a drained trial closes every flow's ledger exactly
//! (arrived == delivered + drops). That law holds because every mutation
//! of the [`FlowRegistry`] funnels through the `KernelStats` hooks
//! (`flow_arrival`, `flow_delivery`, `record_drop_for`), which keep the
//! aggregate and per-flow books in lockstep. A module that named the
//! registry type directly — or called the attribution hooks from outside
//! the kernel — could record a flow event the aggregates never saw,
//! silently breaking the audit the whole layer rests on.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{method_call, raw, RawFinding, Rule};

/// The only files allowed to name `FlowRegistry`: its definition, the
/// stats hooks that wrap it, the detector that watches it, the
/// experiment harness that merges and exports it, the router that
/// builds it, and the crate root that re-exports it.
const REGISTRY_FILES: &[&str] = &[
    "crates/kernel/src/flows.rs",
    "crates/kernel/src/stats.rs",
    "crates/kernel/src/telemetry.rs",
    "crates/kernel/src/experiment.rs",
    "crates/kernel/src/router/mod.rs",
    "crates/kernel/src/lib.rs",
];

/// The sanctioned attribution hooks; callable only inside the kernel
/// crate (consumers read `TrialResult::per_flow()` instead).
const HOOK_METHODS: &[&str] = &["flow_arrival", "flow_delivery", "record_drop_for"];

pub struct FlowDiscipline;

impl Rule for FlowDiscipline {
    fn id(&self) -> &'static str {
        "flow-discipline"
    }

    fn exit_code(&self) -> i32 {
        18
    }

    fn exempt_test_code(&self) -> bool {
        // A test mutating the registry around the hooks breaks the same
        // conservation audit the rule protects.
        false
    }

    fn describe(&self) -> &'static str {
        "per-flow metrics mutate only through the KernelStats attribution hooks"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        let registry_ok = REGISTRY_FILES.contains(&file.rel_path.as_str());
        let hooks_ok = file.rel_path.starts_with("crates/kernel/src/");
        if registry_ok && hooks_ok {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !registry_ok && t.is_ident("FlowRegistry") {
                out.push(raw(
                    toks,
                    i,
                    "FlowRegistry",
                    "per-flow registry named outside its owner files: mutate flows \
                     through the KernelStats hooks and read them through \
                     TrialResult::per_flow() so the arrival conservation audit holds"
                        .to_string(),
                ));
            }
            if !hooks_ok {
                if let Some(&name) = HOOK_METHODS.iter().find(|m| method_call(toks, i, m)) {
                    out.push(raw(
                        toks,
                        i,
                        format!(".{name}("),
                        format!(
                            "flow attribution hook `{name}` called outside the kernel: \
                             only the kernel may attribute arrivals, drops and deliveries, \
                             or the per-flow ledger diverges from the aggregate books"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        FlowDiscipline.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_registry_outside_owner_files() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let mut reg = FlowRegistry::new(8); reg.record_arrival(None);",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, "FlowRegistry");
    }

    #[test]
    fn flags_hooks_outside_the_kernel() {
        let f = run(
            "crates/bench/src/bin/perf.rs",
            "stats.flow_arrival(k); stats.flow_delivery(k, a, b, fr); s.record_drop_for(r, k);",
        );
        let snippets: Vec<&str> = f.iter().map(|r| r.snippet.as_str()).collect();
        assert_eq!(
            snippets,
            [".flow_arrival(", ".flow_delivery(", ".record_drop_for("]
        );
    }

    #[test]
    fn owner_files_and_kernel_callers_are_allowed() {
        for path in REGISTRY_FILES {
            assert!(
                run(path, "let r = FlowRegistry::new(128);").is_empty(),
                "{path} owns the registry"
            );
        }
        assert!(
            run(
                "crates/kernel/src/router/forwarding.rs",
                "self.stats.record_drop_for(DropReason::NoRoute, flow);",
            )
            .is_empty(),
            "kernel modules may call the hooks"
        );
    }

    #[test]
    fn unrelated_idents_do_not_match() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let flow_arrival = 3; registry.per_flow(); r.overflow_arrivals();",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn current_sources_respect_the_boundary() {
        // Self-check against the live tree: nothing outside the owner
        // files names the registry, nothing outside the kernel calls the
        // attribution hooks.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        for crate_dir in ["machine", "core", "kernel", "net", "sim", "bench"] {
            let src_dir = root.join("crates").join(crate_dir).join("src");
            let mut stack = vec![src_dir];
            while let Some(dir) = stack.pop() {
                let Ok(entries) = std::fs::read_dir(&dir) else { continue };
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|x| x == "rs") {
                        let rel = p
                            .strip_prefix(&root)
                            .expect("under root")
                            .to_string_lossy()
                            .replace('\\', "/");
                        let src = std::fs::read_to_string(&p).expect("source readable");
                        let f = run(&rel, &src);
                        assert!(f.is_empty(), "{rel} breaks flow discipline: {f:?}");
                    }
                }
            }
        }
    }
}
