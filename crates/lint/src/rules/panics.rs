//! Rule `panic-freedom`: library crates do not panic.
//!
//! A panic inside the simulation substrate kills a whole trial — under
//! `kernel::par` it kills the worker and poisons the run. Library code in
//! the deterministic crates returns errors instead; `unwrap`/`expect`
//! belongs in tests, benches, and binaries where a crash is an acceptable
//! failure report. Grandfathered call sites live in the baseline;
//! genuinely-justified invariants carry an inline
//! `// simlint: allow(panic-freedom): why`.

use crate::files::{FileInfo, TargetKind};
use crate::tokenizer::Tok;

use super::{bang_macro, method_call, raw, RawFinding, Rule, DETERMINISTIC_CRATES};

/// Methods that panic on their failure case.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that unconditionally panic.
const PANICKY_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn exit_code(&self) -> i32 {
        14
    }

    fn exempt_test_code(&self) -> bool {
        true
    }

    fn describe(&self) -> &'static str {
        "no unwrap()/expect()/panic! in deterministic library crates outside #[cfg(test)]"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        // The linter holds itself to the same bar: a panic in the gate
        // reads as a rule violation, not a finding.
        let in_scope = DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
            || file.crate_name == "lint";
        if file.kind != TargetKind::Lib || !in_scope {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            for m in PANICKY_METHODS {
                if method_call(toks, i, m) {
                    out.push(raw(
                        toks,
                        i,
                        format!(".{m}("),
                        format!(
                            "`.{m}()` in library code panics the trial; return an error, or \
                             justify the invariant with `// simlint: allow(panic-freedom): why`"
                        ),
                    ));
                }
            }
            for m in PANICKY_MACROS {
                if bang_macro(toks, i, m) {
                    out.push(raw(
                        toks,
                        i,
                        format!("{m}!"),
                        format!("`{m}!` in library code aborts the trial; return an error instead"),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        PanicFreedom.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let f = run(
            "crates/net/src/frag.rs",
            "let x = o.unwrap(); let y = r.expect(\"msg\"); panic!(\"boom\"); todo!();",
        );
        let snippets: Vec<&str> = f.iter().map(|r| r.snippet.as_str()).collect();
        assert_eq!(snippets, vec![".unwrap(", ".expect(", "panic!", "todo!"]);
    }

    #[test]
    fn unwrap_or_and_expect_err_are_different_idents() {
        let f = run(
            "crates/net/src/frag.rs",
            "let x = o.unwrap_or(0); let y = o.unwrap_or_else(f); let e = r.expect_err(\"m\");",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bins_tests_and_nondeterministic_crates_are_out_of_scope() {
        let src = "x.unwrap(); panic!();";
        assert!(run("crates/bench/src/bin/figures.rs", src).is_empty());
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        assert!(run("tests/cross_crate.rs", src).is_empty());
        assert!(run("crates/machine/tests/engine_properties.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_examples_never_trigger() {
        let src = "/// ```\n/// let x = q.pop().unwrap();\n/// ```\nfn pop() {}";
        assert!(run("crates/sim/src/lib.rs", src).is_empty());
    }
}
