//! unit-discipline: no arithmetic, comparison, or assignment may mix
//! time bases without a named conversion.
//!
//! The paper's diagnosis was a measurement-discipline story, and the
//! simulator inherits the hazard: cycles, nanoseconds, microseconds,
//! and milliseconds all travel as bare `u64`/`f64`, so `deadline_cycles
//! < elapsed_ns` compiles, runs, and silently corrupts a figure. The
//! naming convention plus the `Freq` conversion API make the base
//! recoverable from the source; this rule runs intra-function dataflow
//! ([`crate::dataflow`]) over every function body and flags:
//!
//! * additive/comparison/assignment operators whose operands resolve to
//!   different bases;
//! * `let x_ns = …` initializers whose right side resolves to a
//!   different base than the declared suffix;
//! * known API arguments carrying the wrong base (`Freq::
//!   cycles_from_nanos` wants ns, the ledger's `charge` wants cycles,
//!   histograms record ns or cycles — never coarser bases).
//!
//! Multiplicative operators are exempt by design: multiplying or
//! dividing legitimately *changes* units (`rate * window_secs`).

use crate::dataflow::{
    conversion, operand_unit_left, operand_unit_right, unit_of_name, Unit, UnitEnv,
};
use crate::files::FileInfo;
use crate::model::FileModel;
use crate::rules::{raw, RawFinding, Rule};
use crate::tokenizer::{Tok, TokKind};

/// The unit-of-measure dataflow rule.
pub struct UnitDiscipline;

/// Exit code for unit-discipline findings.
pub const EXIT_UNIT_DISCIPLINE: i32 = 20;

impl Rule for UnitDiscipline {
    fn id(&self) -> &'static str {
        "unit-discipline"
    }

    fn exit_code(&self) -> i32 {
        EXIT_UNIT_DISCIPLINE
    }

    fn exempt_test_code(&self) -> bool {
        true
    }

    fn describe(&self) -> &'static str {
        "time bases (cycles/ns/us/ms) never mix without a named Freq conversion"
    }

    fn check(&self, _file: &FileInfo, _toks: &[Tok]) -> Vec<RawFinding> {
        Vec::new()
    }

    fn check_model(&self, _file: &FileInfo, toks: &[Tok], model: &FileModel) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for f in &model.fns {
            let (lo, hi) = f.body;
            if lo >= hi {
                continue;
            }
            let env = UnitEnv::for_body(toks, lo, hi);
            check_operators(toks, lo, hi, &env, &mut out);
            check_let_suffixes(toks, lo, hi, &env, &mut out);
            check_api_args(toks, lo, hi, &env, &mut out);
        }
        out
    }
}

fn mixed(toks: &[Tok], i: usize, a: Unit, b: Unit, context: &str) -> RawFinding {
    raw(
        toks,
        i,
        format!("{} {} {}", a.label(), toks[i].text, b.label()),
        format!(
            "{context} mixes {} with {} without a named Freq conversion",
            a.label(),
            b.label()
        ),
    )
}

/// Is the token at `i` a unary use of `+`/`-` (sign, not arithmetic)?
fn is_unary(toks: &[Tok], lo: usize, i: usize) -> bool {
    if i == lo {
        return true;
    }
    let p = &toks[i - 1];
    if p.kind == TokKind::Ident {
        // `return -x`, `x as -…` — keywords make it unary; a value
        // identifier makes it binary.
        return matches!(
            p.text.as_str(),
            "return" | "if" | "else" | "match" | "while" | "in" | "as" | "break"
        );
    }
    if p.kind == TokKind::Num {
        return false;
    }
    // After `)` / `]` it is binary; after any other punctuation
    // (operators, `(`, `,`, `{`, `=`, …) it is a sign.
    !(p.is_punct(')') || p.is_punct(']'))
}

/// Scans one body for mixed-base operators.
fn check_operators(toks: &[Tok], lo: usize, hi: usize, env: &UnitEnv, out: &mut Vec<RawFinding>) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        let next = toks.get(i + 1);
        let prev_op = i > lo
            && "+-*/%&|^<>=!".chars().any(|c| toks[i - 1].is_punct(c));
        if t.is_punct('+') || t.is_punct('-') {
            let arrow = t.is_punct('-') && next.is_some_and(|u| u.is_punct('>'));
            if !arrow && !is_unary(toks, lo, i) {
                let rhs_at = if next.is_some_and(|u| u.is_punct('=')) { i + 2 } else { i + 1 };
                report_if_mixed(toks, lo, hi, i, rhs_at, env, "additive arithmetic", out);
                i = rhs_at;
                continue;
            }
        } else if (t.is_punct('<') || t.is_punct('>')) && !prev_op {
            let shift = next.is_some_and(|u| u.text == t.text);
            let turbofish = t.is_punct('<') && i > lo && toks[i - 1].is_punct(':');
            if !shift && !turbofish {
                let rhs_at = if next.is_some_and(|u| u.is_punct('=')) { i + 2 } else { i + 1 };
                report_if_mixed(toks, lo, hi, i, rhs_at, env, "comparison", out);
                i = rhs_at;
                continue;
            }
        } else if t.is_punct('=') && !prev_op {
            if next.is_some_and(|u| u.is_punct('=')) {
                report_if_mixed(toks, lo, hi, i, i + 2, env, "equality comparison", out);
                i += 2;
                continue;
            }
            // A `let` binding's `=` belongs to the suffix-contract
            // check, not the assignment check.
            if !next.is_some_and(|u| u.is_punct('>')) && !is_let_stmt(toks, lo, i) {
                report_if_mixed(toks, lo, hi, i, i + 1, env, "assignment", out);
                i += 1;
                continue;
            }
        } else if t.is_punct('!') && next.is_some_and(|u| u.is_punct('=')) {
            report_if_mixed(toks, lo, hi, i, i + 2, env, "inequality comparison", out);
            i += 2;
            continue;
        }
        i += 1;
    }
}

/// Does the statement containing the `=` at `op` start with `let`?
fn is_let_stmt(toks: &[Tok], lo: usize, op: usize) -> bool {
    let mut i = op;
    while i > lo {
        i -= 1;
        let t = &toks[i];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("let") {
            return true;
        }
    }
    false
}

fn report_if_mixed(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    op: usize,
    rhs_at: usize,
    env: &UnitEnv,
    context: &str,
    out: &mut Vec<RawFinding>,
) {
    let lhs = operand_unit_left(toks, lo, op, env);
    let rhs = operand_unit_right(toks, rhs_at, hi, env);
    if let (Some(a), Some(b)) = (lhs, rhs) {
        if a != b {
            out.push(mixed(toks, op, a, b, context));
        }
    }
}

/// `let x_ns = <expr in another base>` — the declared suffix is a
/// contract the initializer must meet.
fn check_let_suffixes(toks: &[Tok], lo: usize, hi: usize, env: &UnitEnv, out: &mut Vec<RawFinding>) {
    let mut i = lo;
    while i < hi {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let Some(declared) = unit_of_name(&name.text) else {
            i = j + 1;
            continue;
        };
        // Find the top-level `=` of this binding.
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut eq = None;
        while k < hi {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('>') && !toks[k - 1].is_punct('-') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0
                && t.is_punct('=')
                && !toks.get(k + 1).is_some_and(|u| u.is_punct('='))
            {
                eq = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(eq) = eq {
            if let Some(init) = operand_unit_right(toks, eq + 1, hi, env) {
                if init != declared {
                    out.push(raw(
                        toks,
                        j,
                        format!("let {} = <{}>", name.text, init.label()),
                        format!(
                            "`{}` declares {} but is initialized from {} — convert through Freq or rename",
                            name.text,
                            declared.label(),
                            init.label()
                        ),
                    ));
                }
            }
        }
        i = j + 1;
    }
}

/// Known time-API calls: the argument in the signature's time slot must
/// carry the signature's base.
fn check_api_args(toks: &[Tok], lo: usize, hi: usize, env: &UnitEnv, out: &mut Vec<RawFinding>) {
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|u| u.is_punct('(')) {
            i += 1;
            continue;
        }
        // Histograms record ns or cycles; coarser bases lose precision.
        if t.text == "record" && i > lo && toks[i - 1].is_punct('.') {
            if let Some((a_lo, a_hi)) = arg_span(toks, i + 1, hi, 0) {
                if let Some(u) = operand_unit_right(toks, a_lo, a_hi, env) {
                    if matches!(u, Unit::Us | Unit::Ms | Unit::Secs) {
                        out.push(raw(
                            toks,
                            i,
                            format!("record(<{}>)", u.label()),
                            format!(
                                "histograms record ns or cycles; a {} argument loses precision — convert first",
                                u.label()
                            ),
                        ));
                    }
                }
            }
            i += 1;
            continue;
        }
        let Some(c) = conversion(&t.text) else {
            i += 1;
            continue;
        };
        if let (Some(required), Some((a_lo, a_hi))) =
            (c.arg, arg_span(toks, i + 1, hi, c.arg_index))
        {
            if let Some(u) = operand_unit_right(toks, a_lo, a_hi, env) {
                if u != required {
                    out.push(raw(
                        toks,
                        i,
                        format!("{}(<{}>)", t.text, u.label()),
                        format!(
                            "`{}` takes {} but the argument carries {}",
                            t.text,
                            required.label(),
                            u.label()
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

/// The half-open token span of the `idx`-th top-level argument of the
/// call whose `(` sits at `open`.
fn arg_span(toks: &[Tok], open: usize, hi: usize, idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut start = open + 1;
    let mut i = open;
    while i < hi {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (arg == idx && start < i).then_some((start, i));
            }
        } else if t.is_punct(',') && depth == 1 {
            if arg == idx {
                return (start < i).then_some((start, i));
            }
            arg += 1;
            start = i + 1;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileInfo;
    use crate::tokenizer::tokenize;

    fn findings(src: &str) -> Vec<RawFinding> {
        let info = FileInfo::classify("crates/kernel/src/gate.rs").unwrap();
        let lexed = tokenize(src);
        let model = FileModel::build(&info, &lexed.toks);
        UnitDiscipline.check_model(&info, &lexed.toks, &model)
    }

    #[test]
    fn mixed_comparison_is_flagged() {
        let fs = findings("fn f(deadline_cycles: u64, elapsed_ns: u64) -> bool { deadline_cycles < elapsed_ns }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("cycles"));
        assert!(fs[0].message.contains("ns"));
    }

    #[test]
    fn same_base_and_converted_compares_are_clean() {
        let fs = findings(
            "fn f(freq: Freq, deadline_cycles: u64, elapsed_ns: u64) -> bool {\n\
             deadline_cycles < freq.cycles_from_nanos(elapsed_ns)\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn mixed_addition_and_assignment_are_flagged() {
        let fs = findings("fn f(a_us: u64, b_ms: u64) -> u64 { a_us + b_ms }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fs = findings("fn f(mut a_us: u64, b_ns: u64) { a_us = b_ns; }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fs = findings("fn f(mut a_us: u64, b_us: u64) { a_us += b_us; }");
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn multiplicative_ops_are_exempt() {
        let fs = findings("fn f(rate: u64, window_secs: u64, x_ns: u64) -> u64 { rate * window_secs + x_ns * 2 }");
        assert!(fs.is_empty(), "scaling legitimately changes units: {fs:?}");
    }

    #[test]
    fn let_propagation_carries_units() {
        let fs = findings(
            "fn f(freq: Freq, slo_us: f64, elapsed_cycles: u64) -> bool {\n\
             let deadline = freq.cycles_from_micros(slo_us);\n\
             elapsed_cycles > deadline\n}",
        );
        assert!(fs.is_empty(), "converted binding is cycles: {fs:?}");
        let fs = findings(
            "fn f(freq: Freq, slo_us: f64, elapsed_ns: u64) -> bool {\n\
             let deadline = freq.cycles_from_micros(slo_us);\n\
             elapsed_ns > deadline\n}",
        );
        assert_eq!(fs.len(), 1, "propagated cycles vs ns: {fs:?}");
    }

    #[test]
    fn declared_suffix_contract_is_checked() {
        let fs = findings("fn f(freq: Freq, c: u64) { let t_us = freq.nanos_from_cycles(c); }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("declares us"));
    }

    #[test]
    fn api_argument_bases_are_checked() {
        let fs = findings("fn f(freq: Freq, t_ms: u64) -> u64 { freq.cycles_from_nanos(t_ms) }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fs = findings("fn f(l: &mut CycleLedger, cls: CpuClass, t_ns: u64) { l.charge(cls, t_ns); }");
        assert_eq!(fs.len(), 1, "charge takes cycles: {fs:?}");
        let fs = findings("fn f(l: &mut CycleLedger, cls: CpuClass, t_cycles: u64) { l.charge(cls, t_cycles); }");
        assert!(fs.is_empty(), "{fs:?}");
        let fs = findings("fn f(h: &mut HdrHistogram, lat_ms: u64) { h.record(lat_ms); }");
        assert_eq!(fs.len(), 1, "record wants ns/cycles: {fs:?}");
    }

    #[test]
    fn unknown_units_stay_silent() {
        let fs = findings("fn f(a: u64, b: u64) -> bool { a < b }");
        assert!(fs.is_empty());
    }
}
