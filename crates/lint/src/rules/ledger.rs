//! Rule `ledger-discipline`: `CycleLedger::charge` only at executor
//! commit points.
//!
//! The conserved cycle ledger (figure C-1) is only meaningful if every
//! cycle is charged exactly once, which the executor guarantees by
//! charging at its commit points (`machine::cpu`'s `charge_*` helpers)
//! and debug-asserting totals == elapsed. A stray `charge` call anywhere
//! else double-counts cycles and silently breaks conservation — the
//! figures would still render, just wrongly.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{is_path_sep, raw, RawFinding, Rule};

/// Files allowed to call `charge`: the ledger itself and the executors'
/// commit points — per-CPU since the SMP model, so the cluster
/// interleaver (which advances each CPU's executor in round-robin
/// slices) is a sanctioned commit path alongside the single-engine one.
const COMMIT_POINT_FILES: &[&str] = &[
    "crates/machine/src/ledger.rs",
    "crates/machine/src/cpu.rs",
    "crates/machine/src/cluster.rs",
];

pub struct LedgerDiscipline;

impl Rule for LedgerDiscipline {
    fn id(&self) -> &'static str {
        "ledger-discipline"
    }

    fn exit_code(&self) -> i32 {
        13
    }

    fn exempt_test_code(&self) -> bool {
        // Tests legitimately build little ledgers as fixtures (e.g. the
        // telemetry sampler's unit tests); conservation is asserted by
        // the executor, not by fixtures.
        true
    }

    fn describe(&self) -> &'static str {
        "CycleLedger::charge may only be called from the executor's commit points"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        if COMMIT_POINT_FILES.contains(&file.rel_path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("charge") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            // A call: `.charge(` or `CycleLedger::charge(`. A definition
            // (`fn charge(`) or a different identifier does not match.
            let is_method = i >= 1 && toks[i - 1].is_punct('.');
            let is_path = i >= 2 && is_path_sep(toks, i - 2);
            if is_method || is_path {
                out.push(raw(
                    toks,
                    i,
                    "charge(",
                    "CycleLedger::charge outside the executor's commit points double-counts \
                     cycles and breaks ledger conservation (totals must equal elapsed time)",
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        LedgerDiscipline.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_method_and_path_calls_elsewhere() {
        assert_eq!(run("crates/kernel/src/telemetry.rs", "ledger.charge(c, cy);").len(), 1);
        assert_eq!(
            run("crates/kernel/src/stats.rs", "CycleLedger::charge(&mut l, c, cy);").len(),
            1
        );
    }

    #[test]
    fn commit_points_are_allowed() {
        assert!(run("crates/machine/src/cpu.rs", "self.ledger.charge(class, cy);").is_empty());
        assert!(run("crates/machine/src/ledger.rs", "l.charge(c, cy);").is_empty());
    }

    #[test]
    fn definitions_and_lookalikes_do_not_match() {
        let f = run(
            "crates/kernel/src/telemetry.rs",
            "fn charge(x: u8) {} sched.charge_quantum(cy); usage.charge_intr(src, cy);",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
