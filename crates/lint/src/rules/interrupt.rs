//! Rule `interrupt-discipline`: interrupts only initiate polling.
//!
//! The paper's central fix (§6.2) is that interrupt handlers do no
//! protocol work: they mask the device, mark it pending, and wake the
//! polling thread — nothing else. The interrupt-context modules
//! (`machine::intr`, the `core::driver` entry path) therefore must not
//! reference upper-layer packet processing: IP input, queue insertion,
//! router forwarding, or the screend path. One call from interrupt
//! context into those layers is how the unmodified kernel livelocks.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{is_path_sep, raw, RawFinding, Rule};

/// Modules that run in (or directly service) interrupt context.
const INTERRUPT_CONTEXT_FILES: &[&str] = &[
    "crates/machine/src/intr.rs",
    "crates/core/src/driver.rs",
];

/// Upper-layer identifiers interrupt context must never reference. The
/// SMP shared-state idents are included because an interrupt handler
/// that pokes another CPU's queue or IPI flag directly would bypass the
/// cluster interleaver's slice-boundary delivery — cross-CPU wakeups are
/// the commit points' job, not the handler's (DESIGN.md §12).
const UPPER_LAYER_IDENTS: &[&str] = &[
    "ipv4",
    "livelock_net",
    "forwarding",
    "screend",
    "ipintrq",
    "SmpShared",
    "SmpCtx",
    "ipi_pending",
    "steal_bufs",
];

pub struct InterruptDiscipline;

impl Rule for InterruptDiscipline {
    fn id(&self) -> &'static str {
        "interrupt-discipline"
    }

    fn exit_code(&self) -> i32 {
        12
    }

    fn exempt_test_code(&self) -> bool {
        // Tests of these modules exercise the same boundary; a test that
        // wires protocol work into the handler would "pass" its way into
        // exactly the coupling the rule forbids.
        false
    }

    fn describe(&self) -> &'static str {
        "interrupt-context modules may not call into upper-layer packet processing"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        if !INTERRUPT_CONTEXT_FILES.contains(&file.rel_path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if let Some(&name) = UPPER_LAYER_IDENTS.iter().find(|n| t.is_ident(n)) {
                out.push(raw(
                    toks,
                    i,
                    name,
                    format!(
                        "interrupt context references upper layer `{name}`: handlers may \
                         only mask the device, mark it pending, and wake the poller (§6.2)"
                    ),
                ));
                continue;
            }
            // `queue` as a *path segment* (net::queue::…, queue::PacketQueue)
            // is upper-layer; a local variable named `queue` is not.
            if t.is_ident("queue")
                && (is_path_sep(toks, i + 1) || (i >= 2 && is_path_sep(toks, i - 2)))
            {
                out.push(raw(
                    toks,
                    i,
                    "queue::",
                    "interrupt context references the packet-queue layer: enqueueing is \
                     the poller's job, not the handler's (§6.2)",
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        InterruptDiscipline.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_upper_layer_calls_in_interrupt_modules() {
        let f = run(
            "crates/machine/src/intr.rs",
            "use livelock_net::ipv4::Ipv4Header; fn h() { forwarding::forward(p); }",
        );
        let snippets: Vec<&str> = f.iter().map(|r| r.snippet.as_str()).collect();
        assert!(snippets.contains(&"livelock_net"));
        assert!(snippets.contains(&"ipv4"));
        assert!(snippets.contains(&"forwarding"));
    }

    #[test]
    fn queue_as_path_segment_is_flagged_but_variable_is_not() {
        let bad = run("crates/core/src/driver.rs", "let q = queue::PacketQueue::new();");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].snippet, "queue::");
        let ok = run("crates/core/src/driver.rs", "let queue = Vec::new(); queue.push(1);");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn other_files_are_out_of_scope() {
        assert!(run(
            "crates/kernel/src/router/forwarding.rs",
            "use livelock_net::ipv4::Ipv4Header;"
        )
        .is_empty());
    }

    #[test]
    fn current_interrupt_modules_mention_nothing_upper_layer() {
        // Self-check against the real sources this rule guards.
        for path in super::INTERRUPT_CONTEXT_FILES {
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root")
                .to_path_buf();
            let src = std::fs::read_to_string(root.join(path)).expect("interrupt module readable");
            assert!(run(path, &src).is_empty(), "{path} violates interrupt discipline");
        }
    }
}
