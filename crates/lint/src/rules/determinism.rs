//! Rule `determinism`: the simulation must replay byte-identically.
//!
//! Two sub-checks:
//!
//! 1. **No wall-clock or ad-hoc threading.** `Instant::now`, `SystemTime`,
//!    and `std::thread` primitives introduce host-dependent values and
//!    scheduling. The only sanctioned concurrency is `kernel::par`'s
//!    scoped work queue (whose results are order-restored), and the only
//!    sanctioned wall-clock readers are the self-timing `perf` binary
//!    (including its `BENCH_*.json` trajectory writer), criterion bench
//!    targets under `benches/**`, and the vendored `criterion` harness
//!    itself (not scanned).
//! 2. **No iteration-order-dependent containers in deterministic
//!    crates.** `HashMap`/`HashSet` iteration order depends on the
//!    hasher's random seed; one `for` loop over such a map inside the
//!    simulation pipeline can silently reorder CSV rows. The
//!    deterministic crates use `BTreeMap`/`BTreeSet`/`Vec` instead.

use crate::files::{FileInfo, TargetKind};
use crate::tokenizer::Tok;

use super::{path_match, raw, RawFinding, Rule, DETERMINISTIC_CRATES};

/// Files allowed to use `std::thread` / `Instant`: the sanctioned
/// parallelism module and the self-timing perf harness (which owns the
/// `BENCH_*.json` trajectory writer). Criterion bench targets
/// (`benches/**`, [`TargetKind::Bench`]) are likewise timing paths and
/// exempted wholesale in [`Determinism::check`].
const TIME_AND_THREAD_EXEMPT: &[&str] = &[
    "crates/kernel/src/par.rs",
    "crates/bench/src/bin/perf.rs",
];

/// `thread::<name>` calls that introduce host scheduling.
const THREAD_FNS: &[&str] = &["spawn", "scope", "sleep", "park", "yield_now", "Builder"];

pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn exit_code(&self) -> i32 {
        10
    }

    fn exempt_test_code(&self) -> bool {
        // Tests feed the same deterministic pipeline (figure byte-identity
        // is asserted *by* tests), so they get no wall-clock either.
        false
    }

    fn describe(&self) -> &'static str {
        "no wall-clock/threads outside kernel::par + perf/bench timing paths; no HashMap/HashSet \
         in deterministic crates"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        let timing_path = TIME_AND_THREAD_EXEMPT.contains(&file.rel_path.as_str())
            || file.kind == TargetKind::Bench;
        if !timing_path {
            self.check_time_and_threads(toks, &mut out);
        }
        // The linter's own reports must be deterministic too (rule order,
        // baselines, and the registry table are all diffed in CI).
        let ordered_scope = DETERMINISTIC_CRATES.contains(&file.crate_name.as_str())
            || file.crate_name == "lint";
        if ordered_scope && file.kind == TargetKind::Lib {
            self.check_ordered_containers(toks, &mut out);
        }
        out
    }
}

impl Determinism {
    fn check_time_and_threads(&self, toks: &[Tok], out: &mut Vec<RawFinding>) {
        let mut i = 0;
        while i < toks.len() {
            if let Some(end) = path_match(toks, i, &["Instant", "now"]) {
                out.push(raw(
                    toks,
                    i,
                    "Instant::now",
                    "wall-clock read: simulation time must come from sim::Cycles, not the host \
                     (allowed only in kernel::par and the perf binary)",
                ));
                i = end;
                continue;
            }
            if toks[i].is_ident("SystemTime") {
                out.push(raw(
                    toks,
                    i,
                    "SystemTime",
                    "wall-clock read: SystemTime is host-dependent and breaks replay byte-identity",
                ));
                i += 1;
                continue;
            }
            if let Some(end) = path_match(toks, i, &["std", "thread"]) {
                out.push(raw(
                    toks,
                    i,
                    "std::thread",
                    "ad-hoc threading: host scheduling is nondeterministic; use kernel::par's \
                     order-restoring work queue",
                ));
                i = end;
                continue;
            }
            if let Some(&f) = THREAD_FNS
                .iter()
                .find(|f| path_match(toks, i, &["thread", f]).is_some())
            {
                out.push(raw(
                    toks,
                    i,
                    format!("thread::{f}"),
                    "ad-hoc threading: host scheduling is nondeterministic; use kernel::par's \
                     order-restoring work queue",
                ));
                i = path_match(toks, i, &["thread", f]).unwrap_or(i + 1);
                continue;
            }
            i += 1;
        }
    }

    fn check_ordered_containers(&self, toks: &[Tok], out: &mut Vec<RawFinding>) {
        for (i, t) in toks.iter().enumerate() {
            for name in ["HashMap", "HashSet"] {
                if t.is_ident(name) {
                    out.push(raw(
                        toks,
                        i,
                        name,
                        format!(
                            "{name} iteration order depends on a random hasher seed and can \
                             break figure byte-identity; use BTreeMap/BTreeSet/Vec"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn lib_file(path: &str) -> FileInfo {
        FileInfo::classify(path).expect("classifiable")
    }

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        Determinism.check(&lib_file(path), &tokenize(src).toks)
    }

    #[test]
    fn flags_wall_clock_and_threads() {
        let f = run(
            "crates/net/src/gen.rs",
            "let t = std::time::Instant::now(); let s = SystemTime::now(); std::thread::spawn(|| {});",
        );
        let snippets: Vec<&str> = f.iter().map(|r| r.snippet.as_str()).collect();
        assert!(snippets.contains(&"Instant::now"));
        assert!(snippets.contains(&"SystemTime"));
        assert!(snippets.contains(&"std::thread"));
    }

    #[test]
    fn thread_fn_without_std_prefix_is_flagged_once() {
        let f = run("crates/core/src/gate.rs", "thread::sleep(d);");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, "thread::sleep");
    }

    #[test]
    fn par_and_perf_are_exempt_from_time_checks() {
        assert!(run("crates/kernel/src/par.rs", "std::thread::scope(|s| {});").is_empty());
        assert!(run("crates/bench/src/bin/perf.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn criterion_bench_targets_are_timing_paths() {
        // Criterion harnesses self-time; `benches/**` is exempt wholesale.
        assert!(run("crates/bench/benches/schedulers.rs", "let t = Instant::now();").is_empty());
        // Non-bench bin targets in the same crate stay scanned.
        assert_eq!(run("crates/bench/src/bin/figures.rs", "let t = Instant::now();").len(), 1);
    }

    #[test]
    fn hashmap_flagged_only_in_deterministic_lib_code() {
        assert_eq!(run("crates/net/src/frag.rs", "use std::collections::HashMap;").len(), 1);
        assert_eq!(run("crates/sim/src/rng.rs", "let s: HashSet<u8>;").len(), 1);
        // bench crate and test targets are out of the container check's scope.
        assert!(run("crates/bench/src/lib.rs", "use std::collections::HashMap;").is_empty());
        assert!(run("tests/cross_crate.rs", "let s = std::collections::HashSet::new();").is_empty());
    }

    #[test]
    fn strings_and_comments_never_trigger() {
        let src = r#"// Instant::now() in prose
            let s = "HashMap and SystemTime and thread::spawn";"#;
        assert!(run("crates/net/src/gen.rs", src).is_empty());
    }
}
