//! Rule `smp-isolation`: cross-CPU state only via the IPI/steal paths.
//!
//! The SMP model (DESIGN.md §12) keeps per-CPU executors deterministic by
//! funnelling every cross-CPU interaction through two audited channels:
//! the coalesced IPI flags the cluster interleaver drains at slice
//! boundaries, and the bounded steal buffers the polling layer drains in
//! its idle path. Any other module reaching into `SmpShared` would
//! create a third, unaudited channel — one whose ordering depends on
//! where the reader sits in the round-robin slice, silently breaking the
//! bit-identical replay guarantee and the NIC-boundary conservation
//! audit (arrived == delivered + dropped + steal residue).

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{raw, RawFinding, Rule};

/// The only files allowed to touch the shared SMP state: its definition,
/// the kernel's IPI/steal endpoints, the experiment harness that builds
/// it, and the interleaver that delivers wakeups.
const SMP_CHANNEL_FILES: &[&str] = &[
    "crates/kernel/src/router/smp.rs",
    "crates/kernel/src/router/mod.rs",
    "crates/kernel/src/router/unmodified.rs",
    "crates/kernel/src/router/polled.rs",
    "crates/kernel/src/experiment.rs",
    "crates/machine/src/cluster.rs",
];

/// Identifiers that denote the cross-CPU shared state.
const SMP_STATE_IDENTS: &[&str] = &[
    "SmpShared",
    "SmpCtx",
    "ipi_pending",
    "steal_bufs",
    "steal_residual",
];

pub struct SmpIsolation;

impl Rule for SmpIsolation {
    fn id(&self) -> &'static str {
        "smp-isolation"
    }

    fn exit_code(&self) -> i32 {
        17
    }

    fn exempt_test_code(&self) -> bool {
        // A test that pokes another CPU's state directly exercises
        // exactly the unaudited channel the rule forbids.
        false
    }

    fn describe(&self) -> &'static str {
        "cross-CPU shared state may only be touched by the IPI/steal channel files"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        if SMP_CHANNEL_FILES.contains(&file.rel_path.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if let Some(&name) = SMP_STATE_IDENTS.iter().find(|n| t.is_ident(n)) {
                out.push(raw(
                    toks,
                    i,
                    name,
                    format!(
                        "cross-CPU state `{name}` outside the IPI/steal channel files: \
                         route the interaction through an IPI flag or a steal buffer so \
                         the cluster interleaver keeps replay bit-identical"
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        SmpIsolation.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_shared_state_outside_channel_files() {
        let f = run(
            "crates/kernel/src/telemetry.rs",
            "let sh = SmpShared::new(4, 50); sh.borrow_mut().ipi_pending[1] = true;",
        );
        let snippets: Vec<&str> = f.iter().map(|r| r.snippet.as_str()).collect();
        assert!(snippets.contains(&"SmpShared"));
        assert!(snippets.contains(&"ipi_pending"));
    }

    #[test]
    fn channel_files_are_allowed() {
        for path in SMP_CHANNEL_FILES {
            assert!(
                run(path, "ctx.shared.borrow_mut().steal_bufs[0].pop_front();").is_empty(),
                "{path} should be a sanctioned channel file"
            );
        }
    }

    #[test]
    fn unrelated_idents_do_not_match() {
        let f = run(
            "crates/kernel/src/stats.rs",
            "let steals_taken = 3; let smp = 1; shared.push(smp);",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn current_sources_respect_the_boundary() {
        // Self-check against the live tree: no file outside the channel
        // list references the shared SMP state.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        for crate_dir in ["machine", "core", "kernel", "net", "sim"] {
            let src_dir = root.join("crates").join(crate_dir).join("src");
            let mut stack = vec![src_dir];
            while let Some(dir) = stack.pop() {
                let Ok(entries) = std::fs::read_dir(&dir) else { continue };
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|x| x == "rs") {
                        let rel = p
                            .strip_prefix(&root)
                            .expect("under root")
                            .to_string_lossy()
                            .replace('\\', "/");
                        let src = std::fs::read_to_string(&p).expect("source readable");
                        let f = run(&rel, &src);
                        assert!(f.is_empty(), "{rel} touches SMP state: {f:?}");
                    }
                }
            }
        }
    }
}
