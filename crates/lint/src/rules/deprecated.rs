//! Rule `deprecated-config`: no new callers of deprecated shims.
//!
//! PR 2 replaced the ten named constructors with the fluent
//! `KernelConfig::builder()`; the shims remain only so the old recipes
//! stay documented and testable in one place (`config.rs`). CI used to
//! catch stragglers with a full advisory rebuild under
//! `RUSTFLAGS="-D deprecated"`; this rule replaces that rebuild with a
//! sub-second token scan that gates hard.
//!
//! PR 7 extended the same treatment to `TrialResult`'s scalar CPU
//! accessors (`cpu_share()`, `user_cpu_frac()`, `interrupts_taken()`,
//! `events_dispatched()`): they collapse the per-CPU breakdown to one
//! number and exist only as migration shims over `aggregate()`. New
//! code must choose explicitly between `per_cpu()` and `aggregate()`.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{method_call, path_match, raw, RawFinding, Rule};

/// The deprecated named constructors (see `crates/kernel/src/config.rs`).
const DEPRECATED_CTORS: &[&str] = &[
    "unmodified",
    "unmodified_with_screend",
    "no_polling",
    "polled",
    "polled_screend_no_feedback",
    "polled_screend_feedback",
    "polled_cycle_limit",
    "unmodified_rate_limited",
    "end_system_unmodified",
    "end_system_polled",
];

/// Where the shims are defined (and intentionally self-tested).
const DEFINITION_FILE: &str = "crates/kernel/src/config.rs";

/// The deprecated `TrialResult` scalar accessors (see
/// `crates/kernel/src/experiment.rs`): shims over `aggregate()`.
const DEPRECATED_TRIAL_ACCESSORS: &[&str] = &[
    "cpu_share",
    "user_cpu_frac",
    "interrupts_taken",
    "events_dispatched",
];

/// Where those shims are defined and shim-equivalence-tested — also the
/// home of `EnvState::events_dispatched()`-style same-named machine
/// accessors the harness legitimately calls.
const ACCESSOR_DEFINITION_FILE: &str = "crates/kernel/src/experiment.rs";

pub struct DeprecatedConfig;

impl Rule for DeprecatedConfig {
    fn id(&self) -> &'static str {
        "deprecated-config"
    }

    fn exit_code(&self) -> i32 {
        15
    }

    fn exempt_test_code(&self) -> bool {
        // Production and test code alike should compose configs through
        // the builder; the only sanctioned shim callers are config.rs's
        // own equivalence tests, covered by the file exemption.
        false
    }

    fn describe(&self) -> &'static str {
        "use KernelConfig::builder() and TrialResult::per_cpu()/aggregate(), not the deprecated shims"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        let mut out = Vec::new();
        if file.rel_path != DEFINITION_FILE {
            for (i, t) in toks.iter().enumerate() {
                if !t.is_ident("KernelConfig") {
                    continue;
                }
                for ctor in DEPRECATED_CTORS {
                    if path_match(toks, i, &["KernelConfig", ctor]).is_some() {
                        out.push(raw(
                            toks,
                            i,
                            format!("KernelConfig::{ctor}"),
                            format!(
                                "deprecated constructor `KernelConfig::{ctor}`: compose the \
                                 configuration with KernelConfig::builder() instead"
                            ),
                        ));
                    }
                }
            }
        }
        // The scalar-accessor shims are method calls (`r.cpu_share()`),
        // so any `.name(` match outside their definition file is a
        // straggler from the pre-per-CPU stats API.
        if file.rel_path != ACCESSOR_DEFINITION_FILE {
            for i in 0..toks.len() {
                for name in DEPRECATED_TRIAL_ACCESSORS {
                    if method_call(toks, i, name) {
                        out.push(raw(
                            toks,
                            i + 1,
                            format!(".{name}()"),
                            format!(
                                "deprecated scalar accessor `.{name}()`: the per-CPU stats \
                                 API replaced it — use .aggregate().{name} for the cluster \
                                 total or .per_cpu() for the breakdown"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        DeprecatedConfig.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_deprecated_constructor_paths() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let a = KernelConfig::unmodified(); let b = KernelConfig::polled_screend_feedback(q);",
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].snippet, "KernelConfig::unmodified");
    }

    #[test]
    fn builder_and_builder_methods_are_fine() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let c = KernelConfig::builder().polled(q).no_polling().build();",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn definition_file_is_exempt() {
        assert!(run("crates/kernel/src/config.rs", "KernelConfig::unmodified()").is_empty());
    }

    #[test]
    fn doc_links_in_comments_do_not_trigger() {
        let src = "/// See [`KernelConfig::unmodified`] for history.\nfn f() {}";
        assert!(run("crates/kernel/src/stats.rs", src).is_empty());
    }

    #[test]
    fn flags_deprecated_trial_accessors() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let u = r.user_cpu_frac(); let s = r.cpu_share(); let n = r.interrupts_taken();",
        );
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().any(|x| x.snippet == ".user_cpu_frac()"));
    }

    #[test]
    fn per_cpu_api_and_fields_are_fine() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let a = r.aggregate(); let u = a.user_cpu_frac; for c in r.per_cpu() { let _ = c.cpu_share; }",
        );
        assert!(f.is_empty(), "field access is the new API: {f:?}");
    }

    #[test]
    fn accessor_definition_file_is_exempt() {
        assert!(run(
            "crates/kernel/src/experiment.rs",
            "assert_eq!(r.cpu_share(), agg.cpu_share); engine.state().events_dispatched();"
        )
        .is_empty());
    }
}
