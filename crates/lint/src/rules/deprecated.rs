//! Rule `deprecated-config`: no new callers of the deprecated
//! `KernelConfig` named constructors.
//!
//! PR 2 replaced the ten named constructors with the fluent
//! `KernelConfig::builder()`; the shims remain only so the old recipes
//! stay documented and testable in one place (`config.rs`). CI used to
//! catch stragglers with a full advisory rebuild under
//! `RUSTFLAGS="-D deprecated"`; this rule replaces that rebuild with a
//! sub-second token scan that gates hard.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{path_match, raw, RawFinding, Rule};

/// The deprecated named constructors (see `crates/kernel/src/config.rs`).
const DEPRECATED_CTORS: &[&str] = &[
    "unmodified",
    "unmodified_with_screend",
    "no_polling",
    "polled",
    "polled_screend_no_feedback",
    "polled_screend_feedback",
    "polled_cycle_limit",
    "unmodified_rate_limited",
    "end_system_unmodified",
    "end_system_polled",
];

/// Where the shims are defined (and intentionally self-tested).
const DEFINITION_FILE: &str = "crates/kernel/src/config.rs";

pub struct DeprecatedConfig;

impl Rule for DeprecatedConfig {
    fn id(&self) -> &'static str {
        "deprecated-config"
    }

    fn exit_code(&self) -> i32 {
        15
    }

    fn exempt_test_code(&self) -> bool {
        // Production and test code alike should compose configs through
        // the builder; the only sanctioned shim callers are config.rs's
        // own equivalence tests, covered by the file exemption.
        false
    }

    fn describe(&self) -> &'static str {
        "use KernelConfig::builder() instead of the deprecated named constructors"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        if file.rel_path == DEFINITION_FILE {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("KernelConfig") {
                continue;
            }
            for ctor in DEPRECATED_CTORS {
                if path_match(toks, i, &["KernelConfig", ctor]).is_some() {
                    out.push(raw(
                        toks,
                        i,
                        format!("KernelConfig::{ctor}"),
                        format!(
                            "deprecated constructor `KernelConfig::{ctor}`: compose the \
                             configuration with KernelConfig::builder() instead"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        DeprecatedConfig.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_deprecated_constructor_paths() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let a = KernelConfig::unmodified(); let b = KernelConfig::polled_screend_feedback(q);",
        );
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].snippet, "KernelConfig::unmodified");
    }

    #[test]
    fn builder_and_builder_methods_are_fine() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let c = KernelConfig::builder().polled(q).no_polling().build();",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn definition_file_is_exempt() {
        assert!(run("crates/kernel/src/config.rs", "KernelConfig::unmodified()").is_empty());
    }

    #[test]
    fn doc_links_in_comments_do_not_trigger() {
        let src = "/// See [`KernelConfig::unmodified`] for history.\nfn f() {}";
        assert!(run("crates/kernel/src/stats.rs", src).is_empty());
    }
}
