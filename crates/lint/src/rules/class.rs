//! Rule `class-discipline`: traffic classes are stamped and shed in one
//! place.
//!
//! The priority layer (DESIGN.md §14) proves a per-class conservation
//! law: each class's delivered + shed never exceeds its arrivals, and
//! the three classes sum to the aggregate books. That only holds
//! because exactly one module — the kernel's admission gate — stamps a
//! packet's class ([`Packet::set_class`]) and records the typed
//! [`DropReason::ClassShed`]. A second stamping site could reclassify a
//! packet after its arrival was counted under another class; a second
//! shed site could record a class drop the admission books never saw.
//! Consumers read classes through `TrialResult::per_class()` instead.

use crate::files::FileInfo;
use crate::tokenizer::Tok;

use super::{method_call, raw, RawFinding, Rule};

/// The only file that may stamp a class onto a packet: the classifier /
/// admission-gate module.
const STAMP_FILES: &[&str] = &["crates/kernel/src/router/classify.rs"];

/// The only files that may name `ClassShed`: the drop-reason owner, the
/// admission gate that records it, and the experiment harness that folds
/// it into the per-class summaries.
const SHED_FILES: &[&str] = &[
    "crates/kernel/src/stats.rs",
    "crates/kernel/src/router/classify.rs",
    "crates/kernel/src/experiment.rs",
];

pub struct ClassDiscipline;

impl Rule for ClassDiscipline {
    fn id(&self) -> &'static str {
        "class-discipline"
    }

    fn exit_code(&self) -> i32 {
        19
    }

    fn exempt_test_code(&self) -> bool {
        // Tests assert on shed counters and stamped classes; reading
        // them cannot break the books.
        true
    }

    fn describe(&self) -> &'static str {
        "classes are stamped and ClassShed recorded only in the admission gate"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        let stamp_ok = STAMP_FILES.contains(&file.rel_path.as_str());
        let shed_ok = SHED_FILES.contains(&file.rel_path.as_str());
        if stamp_ok && shed_ok {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !stamp_ok && method_call(toks, i, "set_class") {
                out.push(raw(
                    toks,
                    i,
                    ".set_class(",
                    "packet class stamped outside the admission gate: only \
                     router/classify.rs may classify, or a packet's class can \
                     change after its arrival was booked under another class",
                ));
            }
            if !shed_ok && t.is_ident("ClassShed") {
                out.push(raw(
                    toks,
                    i,
                    "ClassShed",
                    "ClassShed named outside its owner files: only the admission \
                     gate sheds by class; read shed counts through \
                     TrialResult::per_class() so the class books stay conserved",
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn run(path: &str, src: &str) -> Vec<RawFinding> {
        ClassDiscipline.check(
            &FileInfo::classify(path).expect("classifiable"),
            &tokenize(src).toks,
        )
    }

    #[test]
    fn flags_stamping_outside_the_gate() {
        let f = run(
            "crates/kernel/src/router/mod.rs",
            "pkt.set_class(TrafficClass::Bulk);",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, ".set_class(");
    }

    #[test]
    fn flags_class_shed_outside_owner_files() {
        let f = run(
            "crates/bench/src/lib.rs",
            "stats.record_drop_for(DropReason::ClassShed { class }, key);",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, "ClassShed");
    }

    #[test]
    fn owner_files_are_allowed() {
        let src = "pkt.set_class(c); s.record_drop_for(DropReason::ClassShed { class }, k);";
        assert!(run("crates/kernel/src/router/classify.rs", src).is_empty());
        assert!(run(
            "crates/kernel/src/stats.rs",
            "DropReason::ClassShed { class } => {}",
        )
        .is_empty());
        assert!(run(
            "crates/kernel/src/experiment.rs",
            "r.drops.get(DropReason::ClassShed { class })",
        )
        .is_empty());
    }

    #[test]
    fn unrelated_idents_do_not_match() {
        let f = run(
            "crates/bench/src/lib.rs",
            "let set_class = 1; set_class(x); r.per_class(); shed.class_shed();",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn current_sources_respect_the_boundary() {
        // Self-check against the live tree: nothing outside the gate
        // stamps a class, nothing outside the owner files sheds one.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        for crate_dir in ["machine", "core", "kernel", "net", "sim", "bench"] {
            let src_dir = root.join("crates").join(crate_dir).join("src");
            let mut stack = vec![src_dir];
            while let Some(dir) = stack.pop() {
                let Ok(entries) = std::fs::read_dir(&dir) else { continue };
                for e in entries.flatten() {
                    let p = e.path();
                    if p.is_dir() {
                        stack.push(p);
                    } else if p.extension().is_some_and(|x| x == "rs") {
                        let rel = p
                            .strip_prefix(&root)
                            .expect("under root")
                            .to_string_lossy()
                            .replace('\\', "/");
                        let src = std::fs::read_to_string(&p).expect("source readable");
                        let f = run(&rel, &src);
                        assert!(f.is_empty(), "{rel} breaks class discipline: {f:?}");
                    }
                }
            }
        }
    }
}
