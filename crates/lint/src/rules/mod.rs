//! The rule registry and the token-matching helpers rules share.
//!
//! Every rule encodes one invariant the paper's design depends on but the
//! compiler cannot check. Rules work on the lexed token stream of one
//! file plus that file's place in the module map; they return raw
//! findings which the engine then filters through `#[cfg(test)]` regions,
//! inline suppressions, and the baseline.

use crate::files::FileInfo;
use crate::model::FileModel;
use crate::tokenizer::Tok;

mod class;
mod deprecated;
mod determinism;
mod drops;
mod exitcodes;
mod flows;
mod interrupt;
mod ledger;
mod panics;
mod smp;
mod stale;
mod units;

pub use exitcodes::{EXIT_CODE_REGISTRY, EXIT_CODE_REGISTRY_RULE};
pub use stale::{EXIT_STALE_BASELINE, STALE_BASELINE_RULE};
pub use units::EXIT_UNIT_DISCIPLINE;

/// A match a rule reported, before exemption filtering.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Index of the first matched token (for test-region lookup).
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// The matched tokens, normalized — also the baseline key.
    pub snippet: String,
    /// Human explanation tying the finding to the invariant.
    pub message: String,
}

/// One checked invariant.
pub trait Rule {
    /// Stable kebab-case identifier (used in `allow(...)` and baselines).
    fn id(&self) -> &'static str;
    /// Process exit code when this rule (alone) has fresh findings.
    fn exit_code(&self) -> i32;
    /// Whether `#[cfg(test)]` regions are exempt from this rule.
    fn exempt_test_code(&self) -> bool;
    /// One-line description for `--list-rules` and docs.
    fn describe(&self) -> &'static str;
    /// Scans one file. Rules scope themselves: out-of-scope files simply
    /// return no findings.
    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding>;
    /// Scans one file with its semantic model. Rules that need item
    /// extents or per-function dataflow implement this instead of (or in
    /// addition to) `check`; the engine calls both.
    fn check_model(&self, _file: &FileInfo, _toks: &[Tok], _model: &FileModel) -> Vec<RawFinding> {
        Vec::new()
    }
}

/// The five crates whose behavior must replay bit-identically.
pub const DETERMINISTIC_CRATES: &[&str] = &["sim", "net", "machine", "core", "kernel"];

/// Exit code when fresh findings span several rules.
pub const EXIT_MULTIPLE_RULES: i32 = 9;
/// Exit code for malformed `simlint:` directives.
pub const EXIT_BAD_SUPPRESSION: i32 = 16;
/// Rule id for malformed `simlint:` directives (engine-reported).
pub const BAD_SUPPRESSION_RULE: &str = "bad-suppression";

/// Instantiates every rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::Determinism),
        Box::new(drops::DropAccounting),
        Box::new(interrupt::InterruptDiscipline),
        Box::new(ledger::LedgerDiscipline),
        Box::new(panics::PanicFreedom),
        Box::new(deprecated::DeprecatedConfig),
        Box::new(smp::SmpIsolation),
        Box::new(flows::FlowDiscipline),
        Box::new(class::ClassDiscipline),
        Box::new(units::UnitDiscipline),
        Box::new(exitcodes::ExitCodeRegistry),
        Box::new(stale::StaleBaseline),
    ]
}

/// Every suppressible rule id (the `allow(...)` vocabulary).
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// Maps a rule id to its exit code (including the engine's own rule).
pub fn exit_code_for(rule: &str) -> i32 {
    if rule == BAD_SUPPRESSION_RULE {
        return EXIT_BAD_SUPPRESSION;
    }
    all_rules()
        .iter()
        .find(|r| r.id() == rule)
        .map_or(EXIT_MULTIPLE_RULES, |r| r.exit_code())
}

// ---- shared matching helpers ----

/// Is `toks[i..]` the path separator `::`?
pub(crate) fn is_path_sep(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':')) && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Matches `segs[0] :: segs[1] :: …` starting at token `i`. Returns the
/// index one past the match.
pub(crate) fn path_match(toks: &[Tok], i: usize, segs: &[&str]) -> Option<usize> {
    let mut at = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !is_path_sep(toks, at) {
                return None;
            }
            at += 2;
        }
        if !toks.get(at).is_some_and(|t| t.is_ident(seg)) {
            return None;
        }
        at += 1;
    }
    Some(at)
}

/// Matches a method call `.name(` at token `i` (the `.`).
pub(crate) fn method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
}

/// Matches a bang macro `name!` at token `i`.
pub(crate) fn bang_macro(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(name)) && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
}

/// Builds a finding at token index `i`.
pub(crate) fn raw(toks: &[Tok], i: usize, snippet: impl Into<String>, message: impl Into<String>) -> RawFinding {
    RawFinding {
        tok: i,
        line: toks[i].line,
        snippet: snippet.into(),
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn path_match_walks_separators() {
        let toks = tokenize("std::time::Instant::now()").toks;
        assert_eq!(path_match(&toks, 0, &["std", "time", "Instant", "now"]), Some(10));
        // Suffix match starting at `Instant`.
        let at = toks.iter().position(|t| t.is_ident("Instant")).unwrap();
        assert!(path_match(&toks, at, &["Instant", "now"]).is_some());
        assert!(path_match(&toks, 0, &["std", "thread"]).is_none());
    }

    #[test]
    fn method_call_requires_dot_and_paren() {
        let toks = tokenize("x.unwrap(); unwrap(); x.unwrap_or(1)").toks;
        assert!(method_call(&toks, 1, "unwrap"));
        let bare = toks.iter().position(|t| t.is_punct(';')).unwrap();
        assert!(!method_call(&toks, bare + 1, "unwrap"), "free fn is not a method");
        // `unwrap_or` is a different identifier entirely.
        assert!(!toks.iter().enumerate().any(|(i, _)| {
            method_call(&toks, i, "unwrap") && toks[i + 1].text == "unwrap_or"
        }));
    }

    #[test]
    fn exit_codes_are_distinct() {
        let rules = all_rules();
        let mut codes: Vec<i32> = rules.iter().map(|r| r.exit_code()).collect();
        codes.push(EXIT_MULTIPLE_RULES);
        codes.push(EXIT_BAD_SUPPRESSION);
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate exit codes");
        assert!(codes.iter().all(|&c| c != 0 && c != 1 && c != 2 && c != 7));
    }
}
