//! exit-code-registry: every process exit code is registered, named,
//! and alive.
//!
//! The per-file half of the rule (this file) bans raw numeric exit
//! codes in binaries: `std::process::exit(3)`, `ExitCode::from(9)`,
//! and the chaos/observe `violations.push((4, …))` pattern must all go
//! through [`crate::registry::codes`] constants, because a number the
//! registry cannot see is a number the registry cannot keep honest.
//! Exit 0 (success) is always allowed.
//!
//! The workspace half — cross-checking `scripts/ci.sh` literals and
//! constant liveness against the registry — runs in
//! [`crate::lint_workspace`] via [`crate::registry::check_workspace`],
//! because it needs the whole source set and a non-Rust file.

use crate::files::{FileInfo, TargetKind};
use crate::rules::{is_path_sep, method_call, path_match, raw, RawFinding, Rule};
use crate::tokenizer::{Tok, TokKind};

/// The exit-code-registry rule.
pub struct ExitCodeRegistry;

/// Exit code for exit-code-registry findings.
pub const EXIT_CODE_REGISTRY: i32 = 21;

/// Rule id (shared with the workspace-level half).
pub const EXIT_CODE_REGISTRY_RULE: &str = "exit-code-registry";

impl Rule for ExitCodeRegistry {
    fn id(&self) -> &'static str {
        EXIT_CODE_REGISTRY_RULE
    }

    fn exit_code(&self) -> i32 {
        EXIT_CODE_REGISTRY
    }

    fn exempt_test_code(&self) -> bool {
        true
    }

    fn describe(&self) -> &'static str {
        "process exit codes go through registry constants, never raw literals"
    }

    fn check(&self, file: &FileInfo, toks: &[Tok]) -> Vec<RawFinding> {
        // Only binaries exit; library code returning status ints is the
        // bins' problem at the call site.
        if file.kind != TargetKind::Bin {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            // `process::exit(<num>)` — the path prefix keeps a user fn
            // named `exit` out of scope.
            if toks[i].is_ident("exit")
                && i >= 3
                && is_path_sep(toks, i - 2)
                && toks[i - 3].is_ident("process")
            {
                if let Some(n) = literal_arg(toks, i + 1) {
                    if n != "0" {
                        out.push(raw(
                            toks,
                            i,
                            format!("process::exit({n})"),
                            format!(
                                "raw exit code {n}: use a `lint::registry::codes` constant so the registry can track it"
                            ),
                        ));
                    }
                }
            }
            // `ExitCode::from(<num>)`.
            if path_match(toks, i, &["ExitCode", "from"]).is_some() {
                if let Some(n) = literal_arg(toks, i + 4) {
                    if n != "0" {
                        out.push(raw(
                            toks,
                            i,
                            format!("ExitCode::from({n})"),
                            format!(
                                "raw exit code {n}: use a `lint::registry::codes` constant so the registry can track it"
                            ),
                        ));
                    }
                }
            }
            // `violations.push((<num>, …))` — the chaos/observe
            // invariant-code pattern.
            if toks[i].is_ident("violations")
                && method_call(toks, i + 1, "push")
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 5).is_some_and(|t| t.kind == TokKind::Num)
                && toks.get(i + 6).is_some_and(|t| t.is_punct(','))
            {
                let n = &toks[i + 5].text;
                out.push(raw(
                    toks,
                    i,
                    format!("violations.push(({n},"),
                    format!(
                        "raw invariant exit code {n}: use a `lint::registry::codes` constant so the registry can track it"
                    ),
                ));
            }
        }
        out
    }
}

/// The numeric literal directly inside `( … )` at `open`, if the
/// argument is a single literal token.
fn literal_arg(toks: &[Tok], open: usize) -> Option<String> {
    if toks.get(open).is_some_and(|t| t.is_punct('('))
        && toks.get(open + 1).is_some_and(|t| t.kind == TokKind::Num)
        && toks.get(open + 2).is_some_and(|t| t.is_punct(')'))
    {
        Some(toks[open + 1].text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn findings(path: &str, src: &str) -> Vec<RawFinding> {
        let info = FileInfo::classify(path).unwrap();
        ExitCodeRegistry.check(&info, &tokenize(src).toks)
    }

    #[test]
    fn raw_exit_literals_in_bins_are_flagged() {
        let fs = findings(
            "crates/bench/src/bin/figures.rs",
            "fn main() { std::process::exit(3); }",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fs = findings(
            "crates/bench/src/bin/figures.rs",
            "fn main() -> ExitCode { ExitCode::from(9) }",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        let fs = findings(
            "crates/bench/src/bin/livelock.rs",
            "fn f(violations: &mut Vec<(i32, String)>) { violations.push((4, \"x\".into())); }",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn constants_variables_and_zero_are_clean() {
        let src = "fn main() { std::process::exit(codes::FIGURES_SHAPE); \
                    std::process::exit(code); std::process::exit(0); \
                    violations.push((codes::CHAOS_LEDGER_LEAK, msg)); }";
        let fs = findings("crates/bench/src/bin/figures.rs", src);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn libraries_and_user_exit_fns_are_out_of_scope() {
        let fs = findings("crates/kernel/src/config.rs", "fn f() { std::process::exit(3); }");
        assert!(fs.is_empty(), "lib files do not exit");
        let fs = findings("crates/bench/src/bin/perf.rs", "fn f() { exit(3); }");
        assert!(fs.is_empty(), "a bare exit() is not process::exit");
    }
}
