//! Workspace discovery and the lightweight module map.
//!
//! The linter does not parse `Cargo.toml`s; the workspace layout is
//! simple and stable enough to walk directly. Every scanned file is
//! classified by owning crate, target kind, and module path, which is
//! what the rules scope themselves by.
//!
//! Vendored drop-in crates (`criterion`, `proptest`) are not scanned:
//! they are registry stand-ins with their own idioms. The linter scans
//! itself — a gate that exempts its own enforcement code is the first
//! place drift hides.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which compilation target a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code (`src/**`, excluding `src/bin`).
    Lib,
    /// A binary (`src/bin/**`).
    Bin,
    /// An integration test (`tests/**`, including the workspace-level
    /// `tests/` directory wired into the kernel crate).
    Test,
    /// A benchmark (`benches/**`).
    Bench,
    /// An example (`examples/**`).
    Example,
}

/// One scanned source file with its place in the module map.
#[derive(Clone, Debug)]
pub struct FileInfo {
    /// Workspace-relative path with forward slashes
    /// (e.g. `crates/net/src/frag.rs`).
    pub rel_path: String,
    /// Owning crate's directory name (`net`, `kernel`, `bench`, …).
    pub crate_name: String,
    /// Target kind.
    pub kind: TargetKind,
    /// Module path within the crate (`["router", "mod"]` collapses to
    /// `["router"]`; `src/lib.rs` is the empty path).
    pub module: Vec<String>,
}

impl FileInfo {
    /// The module path rendered as `crate::a::b` for messages.
    pub fn module_display(&self) -> String {
        let mut s = self.crate_name.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        s
    }

    /// Classifies a workspace-relative path. Returns `None` for paths the
    /// linter does not scan.
    pub fn classify(rel_path: &str) -> Option<FileInfo> {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let (crate_name, kind, module_parts): (String, TargetKind, &[&str]) = match parts.as_slice()
        {
            ["crates", krate, "src", "bin", rest @ ..] => {
                ((*krate).to_string(), TargetKind::Bin, rest)
            }
            // A crate-root main.rs is the crate's default binary.
            ["crates", krate, "src", "main.rs"] => {
                ((*krate).to_string(), TargetKind::Bin, &["main.rs"][..])
            }
            ["crates", krate, "src", rest @ ..] => ((*krate).to_string(), TargetKind::Lib, rest),
            ["crates", krate, "tests", rest @ ..] => ((*krate).to_string(), TargetKind::Test, rest),
            ["crates", krate, "benches", rest @ ..] => {
                ((*krate).to_string(), TargetKind::Bench, rest)
            }
            // The workspace-level tests/ and examples/ are targets of the
            // kernel crate (see crates/kernel/Cargo.toml).
            ["tests", rest @ ..] => ("kernel".to_string(), TargetKind::Test, rest),
            ["examples", rest @ ..] => ("kernel".to_string(), TargetKind::Example, rest),
            _ => return None,
        };
        if SKIPPED_CRATES.contains(&crate_name.as_str()) {
            return None;
        }
        let mut module: Vec<String> = module_parts
            .iter()
            .map(|p| p.trim_end_matches(".rs").to_string())
            .collect();
        // lib.rs / main.rs / mod.rs do not open a module level of their own.
        if matches!(module.last().map(String::as_str), Some("lib" | "main" | "mod")) {
            module.pop();
        }
        Some(FileInfo {
            rel_path: rel_path.to_string(),
            crate_name,
            kind,
            module,
        })
    }
}

/// Crates never scanned: vendored registry stand-ins.
pub const SKIPPED_CRATES: &[&str] = &["criterion", "proptest"];

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Walks the workspace and returns every `.rs` file the linter scans, as
/// `(FileInfo, source)` pairs, in deterministic path order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<(FileInfo, String)>> {
    let mut rel_paths: Vec<String> = Vec::new();
    let crates_dir = root.join("crates");
    for krate in sorted_dir(&crates_dir)? {
        let name = krate.file_name().unwrap_or_default().to_string_lossy().to_string();
        if SKIPPED_CRATES.contains(&name.as_str()) {
            continue;
        }
        for sub in ["src", "tests", "benches"] {
            collect_rs(&krate.join(sub), root, &mut rel_paths)?;
        }
    }
    collect_rs(&root.join("tests"), root, &mut rel_paths)?;
    collect_rs(&root.join("examples"), root, &mut rel_paths)?;
    rel_paths.sort();

    let mut out = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        if let Some(info) = FileInfo::classify(&rel) {
            let src = fs::read_to_string(root.join(&rel))?;
            out.push((info, src));
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir` (if it exists) as
/// workspace-relative forward-slash paths.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_lib_and_collapses_mod() {
        let f = FileInfo::classify("crates/net/src/frag.rs").unwrap();
        assert_eq!(f.crate_name, "net");
        assert_eq!(f.kind, TargetKind::Lib);
        assert_eq!(f.module, vec!["frag"]);
        assert_eq!(f.module_display(), "net::frag");

        let f = FileInfo::classify("crates/kernel/src/router/mod.rs").unwrap();
        assert_eq!(f.module, vec!["router"]);
        let f = FileInfo::classify("crates/sim/src/lib.rs").unwrap();
        assert!(f.module.is_empty());
        assert_eq!(f.module_display(), "sim");
    }

    #[test]
    fn classifies_bins_tests_benches() {
        let f = FileInfo::classify("crates/bench/src/bin/perf.rs").unwrap();
        assert_eq!(f.kind, TargetKind::Bin);
        let f = FileInfo::classify("crates/machine/tests/engine_properties.rs").unwrap();
        assert_eq!(f.kind, TargetKind::Test);
        let f = FileInfo::classify("crates/bench/benches/fig6_1.rs").unwrap();
        assert_eq!(f.kind, TargetKind::Bench);
    }

    #[test]
    fn workspace_level_tests_belong_to_kernel() {
        let f = FileInfo::classify("tests/cross_crate.rs").unwrap();
        assert_eq!(f.crate_name, "kernel");
        assert_eq!(f.kind, TargetKind::Test);
        let f = FileInfo::classify("examples/quickstart.rs").unwrap();
        assert_eq!(f.kind, TargetKind::Example);
    }

    #[test]
    fn vendored_is_skipped_and_the_linter_lints_itself() {
        assert!(FileInfo::classify("crates/criterion/src/lib.rs").is_none());
        assert!(FileInfo::classify("crates/proptest/src/lib.rs").is_none());
        assert!(FileInfo::classify("target/debug/build/foo.rs").is_none());
        let f = FileInfo::classify("crates/lint/src/main.rs").unwrap();
        assert_eq!(f.crate_name, "lint");
        assert_eq!(f.kind, TargetKind::Bin);
    }
}
