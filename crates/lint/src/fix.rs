//! Autofix: mechanical rewrites for the findings that have exactly one
//! right answer.
//!
//! `simlint --fix` applies two fixers:
//!
//! * **deprecated-config constructors** — each shim's body is a fixed
//!   builder chain (see `crates/kernel/src/config.rs`), so the call site
//!   rewrite is a pure template substitution:
//!   `KernelConfig::polled(q)` becomes
//!   `KernelConfig::builder().polled(q).build()`. The argument text is
//!   carried over verbatim; names the template introduces
//!   (`ScreendConfig`, `Quota`, …) may need an import the fixer does not
//!   add — the compiler will say so, which beats a silently-wrong edit.
//! * **suppression normalization** — well-formed but oddly-spaced
//!   `simlint:` directives are rewritten to the canonical
//!   `// simlint: allow(rule): reason`. Malformed directives (missing
//!   reason, unknown rule) are *not* touched: inventing a justification
//!   is exactly what the bad-suppression rule exists to prevent.
//!
//! Fixes are computed as character-span edits against the token stream,
//! so strings, comments and doc links can never be rewritten by
//! accident. Running the fixer twice is a no-op by construction: a
//! rewritten call site no longer matches, and a canonical directive
//! round-trips to itself. `--fix --dry-run` prints the would-be diff
//! and exits with [`crate::registry::codes::SIMLINT_FIXABLE`] if any
//! edit is pending — CI uses that as the "the tree is fully fixed"
//! gate.

use std::io;
use std::path::Path;

use crate::files::{self, FileInfo};
use crate::rules;
use crate::suppress;
use crate::tokenizer::{self, Tok};

/// One span rewrite, in character offsets into the source.
#[derive(Clone, Debug)]
pub struct Edit {
    /// Start character offset (inclusive).
    pub start: usize,
    /// End character offset (exclusive).
    pub end: usize,
    /// Replacement text.
    pub replacement: String,
    /// What this edit does, one line (for the dry-run report).
    pub note: String,
}

/// The deprecated constructors and their builder-chain templates.
/// `{0}` is the call's argument text, carried over verbatim; `None`
/// templates take no argument. Mirrors the shim bodies in
/// `crates/kernel/src/config.rs` — if a shim changes, change this table
/// (the equivalence tests below pin the mapping).
const CTOR_TEMPLATES: &[(&str, bool, &str)] = &[
    ("unmodified", false, "KernelConfig::builder().build()"),
    (
        "unmodified_with_screend",
        false,
        "KernelConfig::builder().screend(ScreendConfig::default()).build()",
    ),
    ("no_polling", false, "KernelConfig::builder().no_polling().build()"),
    ("polled", true, "KernelConfig::builder().polled({0}).build()"),
    (
        "polled_screend_no_feedback",
        true,
        "KernelConfig::builder().polled({0}).screend(ScreendConfig::default()).build()",
    ),
    (
        "polled_screend_feedback",
        true,
        "KernelConfig::builder().polled({0}).screend(ScreendConfig::default()).feedback(FeedbackConfig::default()).build()",
    ),
    (
        "polled_cycle_limit",
        true,
        "KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit({0}).user_process(true).build()",
    ),
    (
        "unmodified_rate_limited",
        true,
        "KernelConfig::builder().intr_rate_limit({0}, 4).build()",
    ),
    (
        "end_system_unmodified",
        false,
        "KernelConfig::builder().local_delivery(LocalDeliveryConfig::default()).ip_forwarding(false).build()",
    ),
    (
        "end_system_polled",
        true,
        "KernelConfig::builder().polled({0}).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..LocalDeliveryConfig::default() }).ip_forwarding(false).build()",
    ),
];

/// The shim definition file — its own bodies and equivalence tests are
/// the sanctioned callers and must not be rewritten.
const CTOR_DEFINITION_FILE: &str = "crates/kernel/src/config.rs";

/// Computes every fix for one file. Edits are returned sorted and
/// non-overlapping.
pub fn fixes_for(info: &FileInfo, src: &str) -> Vec<Edit> {
    let lexed = tokenizer::tokenize(src);
    let mut edits = Vec::new();
    if info.rel_path != CTOR_DEFINITION_FILE {
        ctor_fixes(src, &lexed.toks, &mut edits);
    }
    suppression_fixes(src, &lexed.lint_comments, &mut edits);
    edits.sort_by_key(|e| e.start);
    edits.dedup_by_key(|e| e.start);
    edits
}

fn ctor_fixes(src: &str, toks: &[Tok], edits: &mut Vec<Edit>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("KernelConfig") {
            continue;
        }
        for &(ctor, takes_arg, template) in CTOR_TEMPLATES {
            let Some(after) = rules::path_match(toks, i, &["KernelConfig", ctor]) else {
                continue;
            };
            if !toks.get(after).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let Some(close) = matching_paren(toks, after) else {
                continue;
            };
            let arg = slice_chars(src, toks[after].span.1, toks[close].span.0);
            let arg = arg.trim();
            if takes_arg == arg.is_empty() {
                // Arity mismatch with the shim — leave it for the
                // compiler rather than guess.
                continue;
            }
            edits.push(Edit {
                start: toks[i].span.0,
                end: toks[close].span.1,
                replacement: template.replace("{0}", arg),
                note: format!("rewrite deprecated `KernelConfig::{ctor}(..)` to the builder chain"),
            });
        }
    }
}

fn suppression_fixes(src: &str, comments: &[tokenizer::LintComment], edits: &mut Vec<Edit>) {
    let ids = rules::rule_ids();
    for c in comments {
        if !c.line_comment {
            continue;
        }
        let Some(at) = c.text.find("simlint:") else {
            continue;
        };
        if !c.text[..at].trim().is_empty() {
            // Prose-prefixed mention; not a directive to normalize.
            continue;
        }
        let parsed = suppress::parse(std::slice::from_ref(c), &ids);
        let Some(s) = parsed.allows.first() else {
            continue;
        };
        let canonical = format!("// simlint: allow({}): {}", s.rule, s.reason);
        let current = slice_chars(src, c.span.0, c.span.1);
        if current != canonical {
            edits.push(Edit {
                start: c.span.0,
                end: c.span.1,
                replacement: canonical,
                note: format!("normalize simlint directive for `{}`", s.rule),
            });
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The source text between two character offsets.
fn slice_chars(src: &str, start: usize, end: usize) -> String {
    src.chars().take(end).skip(start).collect()
}

/// Applies sorted, non-overlapping character-span edits.
pub fn apply(src: &str, edits: &[Edit]) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut at = 0usize;
    for e in edits {
        out.extend(&chars[at..e.start.min(chars.len())]);
        out.push_str(&e.replacement);
        at = e.end.min(chars.len());
    }
    out.extend(&chars[at..]);
    out
}

/// The outcome of a workspace fix run.
#[derive(Debug, Default)]
pub struct FixOutcome {
    /// `(file, edit count)` per file with pending or applied fixes.
    pub files: Vec<(String, usize)>,
    /// The (would-be) changes, as a minimal line diff.
    pub diff: String,
}

impl FixOutcome {
    /// Total number of edits across files.
    pub fn edit_count(&self) -> usize {
        self.files.iter().map(|(_, n)| n).sum()
    }
}

/// Fixes the whole workspace. With `dry_run` nothing is written; the
/// diff describes what `--fix` would change.
pub fn fix_workspace(root: &Path, dry_run: bool) -> io::Result<FixOutcome> {
    let sources = files::scan_workspace(root)?;
    let mut out = FixOutcome::default();
    for (info, src) in &sources {
        let edits = fixes_for(info, src);
        if edits.is_empty() {
            continue;
        }
        let fixed = apply(src, &edits);
        out.diff.push_str(&line_diff(&info.rel_path, src, &fixed));
        out.files.push((info.rel_path.clone(), edits.len()));
        if !dry_run {
            std::fs::write(root.join(&info.rel_path), &fixed)?;
        }
    }
    Ok(out)
}

/// A minimal line diff: common prefix and suffix trimmed, the changed
/// middle shown as `-`/`+` lines with 1-based line numbers.
fn line_diff(file: &str, old: &str, new: &str) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let mut lo = 0usize;
    while lo < a.len() && lo < b.len() && a[lo] == b[lo] {
        lo += 1;
    }
    let mut hi = 0usize;
    while hi < a.len() - lo && hi < b.len() - lo && a[a.len() - 1 - hi] == b[b.len() - 1 - hi] {
        hi += 1;
    }
    let mut out = format!("--- {file}\n");
    for (i, line) in a[lo..a.len() - hi].iter().enumerate() {
        out.push_str(&format!("-{:>5} {line}\n", lo + i + 1));
    }
    for (i, line) in b[lo..b.len() - hi].iter().enumerate() {
        out.push_str(&format!("+{:>5} {line}\n", lo + i + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(path: &str) -> FileInfo {
        FileInfo::classify(path).expect("classifiable")
    }

    fn fix(path: &str, src: &str) -> String {
        apply(src, &fixes_for(&info(path), src))
    }

    #[test]
    fn zero_arg_ctor_rewrites_to_builder() {
        let got = fix(
            "crates/bench/src/lib.rs",
            "let c = KernelConfig::unmodified();",
        );
        assert_eq!(got, "let c = KernelConfig::builder().build();");
    }

    #[test]
    fn arg_carries_over_verbatim() {
        let got = fix(
            "crates/bench/src/lib.rs",
            "let c = KernelConfig::polled(Quota::Limited(10));",
        );
        assert_eq!(
            got,
            "let c = KernelConfig::builder().polled(Quota::Limited(10)).build();"
        );
        let got = fix(
            "crates/bench/src/lib.rs",
            "let c = KernelConfig::unmodified_rate_limited(rate_hz);",
        );
        assert_eq!(
            got,
            "let c = KernelConfig::builder().intr_rate_limit(rate_hz, 4).build();"
        );
    }

    #[test]
    fn definition_file_and_strings_are_untouched() {
        let src = "let c = KernelConfig::unmodified();";
        assert_eq!(fix("crates/kernel/src/config.rs", src), src);
        let src = "let s = \"KernelConfig::unmodified()\";";
        assert_eq!(fix("crates/bench/src/lib.rs", src), src);
    }

    #[test]
    fn suppressions_normalize_to_canonical_spacing() {
        let src = "//simlint:   allow( panic-freedom )  :  caller checked\nx.unwrap();";
        let got = fix("crates/net/src/frag.rs", src);
        assert_eq!(
            got,
            "// simlint: allow(panic-freedom): caller checked\nx.unwrap();"
        );
    }

    #[test]
    fn malformed_and_prose_directives_are_left_alone() {
        let src = "// simlint: allow(panic-freedom)\nfn f() {}";
        assert_eq!(fix("crates/net/src/frag.rs", src), src, "no invented reason");
        let src = "// docs may mention simlint: allow(panic-freedom): like this\nfn f() {}";
        assert_eq!(fix("crates/net/src/frag.rs", src), src, "prose prefix");
    }

    #[test]
    fn fixing_is_idempotent() {
        let src = "let c = KernelConfig::polled(q);\n//simlint: allow(panic-freedom):ok\nx.unwrap();";
        let once = fix("crates/bench/src/lib.rs", &src);
        let twice = fix("crates/bench/src/lib.rs", &once);
        assert_eq!(once, twice);
        assert!(fixes_for(&info("crates/bench/src/lib.rs"), &once).is_empty());
    }

    #[test]
    fn line_diff_trims_common_context() {
        let d = line_diff("f.rs", "a\nb\nc\n", "a\nB\nc\n");
        assert_eq!(d, "--- f.rs\n-    2 b\n+    2 B\n");
    }
}
