//! simlint — the workspace's static-analysis layer.
//!
//! The paper's fix rests on discipline the compiler cannot see:
//! interrupt handlers only initiate polling, every drop is accounted,
//! every CPU cycle is charged exactly once, and the whole simulation
//! replays byte-identically. simlint turns those conventions into
//! checked invariants: it lexes the workspace's Rust sources with a
//! comment/string-aware tokenizer, builds a lightweight module map, and
//! runs a rule engine over the token streams.
//!
//! The pipeline per file:
//!
//! 1. [`tokenizer`] lexes the source (literals and comments can never
//!    trigger rules);
//! 2. [`regions`] marks `#[cfg(test)]` spans, which some rules exempt;
//! 3. each [`rules::Rule`] scans the tokens, scoped by the module map
//!    ([`files::FileInfo`]);
//! 4. [`suppress`] applies inline `// simlint: allow(rule): reason`
//!    directives (reason mandatory);
//! 5. [`baseline`] absorbs grandfathered findings so the gate holds the
//!    line at "no new violations".
//!
//! See `DESIGN.md` ("The static-analysis layer") for the rule-by-rule
//! rationale and `scripts/ci.sh` for the gate (exit 7).

pub mod baseline;
pub mod dataflow;
pub mod files;
pub mod fix;
pub mod model;
pub mod regions;
pub mod registry;
pub mod report;
pub mod rules;
pub mod suppress;
pub mod tokenizer;

use std::io;
use std::path::Path;

use baseline::Baseline;
use files::FileInfo;
use rules::{Rule, BAD_SUPPRESSION_RULE};

/// One finished finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`panic-freedom`, …).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Matched tokens, normalized; also the baseline key.
    pub snippet: String,
    /// Human explanation.
    pub message: String,
}

/// The findings of one file, before baseline filtering.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings that stand.
    pub active: Vec<Finding>,
    /// Findings silenced by a well-formed inline suppression.
    pub suppressed: Vec<Finding>,
}

/// Lints one source text as if it lived at `info`'s path. This is the
/// whole engine for a single file; the workspace run and the fixture
/// tests both go through it.
pub fn lint_source(info: &FileInfo, src: &str, rules: &[Box<dyn Rule>]) -> FileLint {
    let lexed = tokenizer::tokenize(src);
    let test_regions = regions::test_regions(&lexed.toks);
    let file_model = model::FileModel::build(info, &lexed.toks);
    let ids = rules::rule_ids();
    let sup = suppress::parse(&lexed.lint_comments, &ids);

    let mut out = FileLint::default();
    for bad in &sup.bad {
        out.active.push(Finding {
            rule: BAD_SUPPRESSION_RULE.to_string(),
            file: info.rel_path.clone(),
            line: bad.line,
            snippet: "simlint:".to_string(),
            message: format!("malformed simlint directive: {}", bad.problem),
        });
    }
    for rule in rules {
        let mut raws = rule.check(info, &lexed.toks);
        raws.extend(rule.check_model(info, &lexed.toks, &file_model));
        for rf in raws {
            if rule.exempt_test_code() && test_regions.contains(rf.tok) {
                continue;
            }
            let finding = Finding {
                rule: rule.id().to_string(),
                file: info.rel_path.clone(),
                line: rf.line,
                snippet: rf.snippet,
                message: rf.message,
            };
            if sup.covers(rule.id(), rf.line) {
                out.suppressed.push(finding);
            } else {
                out.active.push(finding);
            }
        }
    }
    out
}

/// The result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Findings that fail the gate (not suppressed, not baselined).
    pub fresh: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
    /// Findings silenced by inline suppressions.
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lints every scanned file under `root` and applies the baseline.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> io::Result<WorkspaceLint> {
    let sources = files::scan_workspace(root)?;
    let rules = rules::all_rules();
    let mut all_active = Vec::new();
    let mut suppressed = Vec::new();
    let files_scanned = sources.len();
    for (info, src) in &sources {
        let mut fl = lint_source(info, src, &rules);
        all_active.append(&mut fl.active);
        suppressed.append(&mut fl.suppressed);
    }
    sort_findings(&mut all_active);
    sort_findings(&mut suppressed);
    let (mut fresh, baselined, stale) = baseline.partition_stale(all_active);
    // Unspent baseline entries are findings of their own (exit 22): a
    // burned-down violation must leave the baseline or it could silently
    // absorb a reintroduction. Key format: rule<TAB>file<TAB>snippet.
    for k in stale {
        let mut parts = k.splitn(3, '\t');
        let rule = parts.next().unwrap_or("").to_string();
        let file = parts.next().unwrap_or("").to_string();
        let snippet = parts.next().unwrap_or("").to_string();
        fresh.push(Finding {
            rule: rules::STALE_BASELINE_RULE.to_string(),
            file,
            line: 0,
            snippet: format!("{rule}\t{snippet}"),
            message: format!(
                "stale baseline entry: no `{rule}` finding with snippet `{snippet}` exists any more — delete the line from crates/lint/baseline.txt"
            ),
        });
    }
    // Workspace-level registry cross-checks land here, also past the
    // baseline: exit-code drift is never grandfathered.
    fresh.extend(registry::check_workspace(root, &sources));
    sort_findings(&mut fresh);
    Ok(WorkspaceLint {
        fresh,
        baselined,
        suppressed,
        files_scanned,
    })
}

/// Deterministic reporting order: file, then line, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.snippet).cmp(&(&b.file, b.line, &b.rule, &b.snippet))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(path: &str) -> FileInfo {
        FileInfo::classify(path).expect("classifiable")
    }

    #[test]
    fn suppression_with_reason_silences_one_line() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    // simlint: allow(panic-freedom): fixture invariant\n    o.unwrap()\n}\nfn g(o: Option<u8>) -> u8 { o.unwrap() }";
        let fl = lint_source(&info("crates/net/src/frag.rs"), src, &rules::all_rules());
        assert_eq!(fl.suppressed.len(), 1);
        assert_eq!(fl.suppressed[0].line, 3);
        assert_eq!(fl.active.len(), 1, "the unsuppressed unwrap stands");
        assert_eq!(fl.active[0].line, 5);
    }

    #[test]
    fn suppression_without_reason_is_its_own_finding() {
        let src = "// simlint: allow(panic-freedom)\nfn f(o: Option<u8>) -> u8 { o.unwrap() }";
        let fl = lint_source(&info("crates/net/src/frag.rs"), src, &rules::all_rules());
        let rules_hit: Vec<&str> = fl.active.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules_hit.contains(&"bad-suppression"));
        assert!(
            rules_hit.contains(&"panic-freedom"),
            "a malformed allow suppresses nothing"
        );
    }

    #[test]
    fn test_region_exemption_honors_per_rule_flag() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { ledger.charge(c, cy); o.unwrap(); }\n}";
        let fl = lint_source(&info("crates/kernel/src/telemetry.rs"), src, &rules::all_rules());
        assert!(
            fl.active.is_empty(),
            "ledger + panic rules exempt test code: {:?}",
            fl.active
        );
    }

    #[test]
    fn findings_sort_deterministically() {
        let mut fs = vec![
            Finding {
                rule: "b".into(),
                file: "z.rs".into(),
                line: 1,
                snippet: "s".into(),
                message: String::new(),
            },
            Finding {
                rule: "a".into(),
                file: "a.rs".into(),
                line: 9,
                snippet: "s".into(),
                message: String::new(),
            },
            Finding {
                rule: "a".into(),
                file: "a.rs".into(),
                line: 2,
                snippet: "s".into(),
                message: String::new(),
            },
        ];
        sort_findings(&mut fs);
        assert_eq!(fs[0].file, "a.rs");
        assert_eq!(fs[0].line, 2);
        assert_eq!(fs[2].file, "z.rs");
    }
}
