//! A stable, deterministic discrete-event queue.
//!
//! Events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-breaking via a monotonically increasing sequence
//! number), which keeps whole-simulation runs bit-reproducible.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// An entry in the heap; ordered so the *earliest* (time, seq) pops first.
struct Entry<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use livelock_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(10), 'b');
/// q.schedule(Cycles::new(10), 'c');
/// q.schedule(Cycles::new(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles::new(7), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), 'x');
        assert_eq!(q.pop_due(Cycles::new(9)), None);
        assert_eq!(q.pop_due(Cycles::new(10)), Some((Cycles::new(10), 'x')));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Cycles::new(5), ());
        q.schedule(Cycles::new(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycles::new(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_stable() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(5), "a");
        q.schedule(Cycles::new(5), "b");
        assert_eq!(q.pop(), Some((Cycles::new(5), "a")));
        q.schedule(Cycles::new(5), "c");
        // "b" was scheduled before "c"; FIFO order must hold.
        assert_eq!(q.pop(), Some((Cycles::new(5), "b")));
        assert_eq!(q.pop(), Some((Cycles::new(5), "c")));
    }
}
