//! Virtual time: CPU cycles, nanoseconds, and clock-frequency conversion.
//!
//! The simulator's native unit is the CPU *cycle* ([`Cycles`]), mirroring the
//! Alpha cycle counter the paper's CPU-limit mechanism reads. Wall-clock-like
//! quantities (packet rates, Ethernet serialization times) are expressed in
//! nanoseconds ([`Nanos`]) and converted through a [`Freq`].

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, measured in CPU cycles.
///
/// `Cycles` is used both as an instant (cycles since simulation start) and a
/// duration; arithmetic saturates on subtraction so transient bookkeeping
/// errors cannot wrap around and corrupt the event queue ordering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero instant / empty duration.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable time; used as "never" in timer slots.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count from a raw value.
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: Cycles) -> Cycles {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    pub fn max(self, other: Cycles) -> Cycles {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns this duration as a fraction of `whole` (0.0 when `whole` is zero).
    pub fn fraction_of(self, whole: Cycles) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A duration in nanoseconds, independent of CPU frequency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from nanoseconds.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A CPU clock frequency, used to convert between [`Nanos`] and [`Cycles`].
///
/// The reproduction uses a 100 MHz clock by default (1 cycle = 10 ns), a
/// round-number stand-in for the paper's DECstation 3000/300.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Freq {
    hz: u64,
}

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be nonzero");
        Freq { hz }
    }

    /// Creates a frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Freq::hz(mhz * 1_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.hz
    }

    /// Converts a nanosecond duration to cycles (rounding to nearest).
    pub fn cycles_from_nanos(self, ns: Nanos) -> Cycles {
        let n = ns.raw();
        // 64-bit fast path (identical integer result): wire and arrival
        // timings convert per packet, and 128-bit division is an order of
        // magnitude slower. Covers durations up to minutes at GHz rates.
        if n < (u64::MAX - 500_000_000) / self.hz.max(1) {
            return Cycles::new((n * self.hz + 500_000_000) / 1_000_000_000);
        }
        // Split to avoid overflow for long durations at high frequencies:
        // ns * hz can exceed u64 when ns is minutes at GHz rates.
        let ns = n as u128;
        let hz = self.hz as u128;
        Cycles::new(((ns * hz + 500_000_000) / 1_000_000_000) as u64)
    }

    /// Converts a microsecond duration to cycles.
    pub fn cycles_from_micros(self, us: u64) -> Cycles {
        self.cycles_from_nanos(Nanos::from_micros(us))
    }

    /// Converts a millisecond duration to cycles.
    pub fn cycles_from_millis(self, ms: u64) -> Cycles {
        self.cycles_from_nanos(Nanos::from_millis(ms))
    }

    /// Converts whole seconds to cycles.
    pub fn cycles_from_secs(self, s: u64) -> Cycles {
        self.cycles_from_nanos(Nanos::from_secs(s))
    }

    /// The exact nanoseconds-per-cycle multiplier, when the clock period
    /// is a whole number of nanoseconds (i.e. the frequency divides 1 GHz
    /// — true of every paper-testbed frequency). For such clocks
    /// `nanos_from_cycles(c)` equals `c * k` exactly whenever the product
    /// fits in 64 bits, letting per-packet hot paths hoist one divide
    /// into a multiply. Returns `None` for clocks with fractional-ns
    /// periods, which must take the dividing path.
    pub fn exact_nanos_per_cycle(self) -> Option<u64> {
        let k = 1_000_000_000 / self.hz;
        // (c*k*hz + hz/2) / hz == c*k + (hz/2)/hz == c*k: the rounding
        // term can never carry, so the multiplier is exact for every c.
        (k * self.hz == 1_000_000_000).then_some(k)
    }

    /// Converts a cycle count back to nanoseconds (rounding to nearest).
    pub fn nanos_from_cycles(self, cy: Cycles) -> Nanos {
        let c = cy.raw();
        // 64-bit fast path (identical integer result): per-packet latency
        // conversions happen once per delivery and 128-bit division is an
        // order of magnitude slower than 64-bit. Covers every cycle count
        // below ~18.4e9, i.e. many seconds of simulated time.
        if c < (u64::MAX - self.hz / 2) / 1_000_000_000 {
            return Nanos::new((c * 1_000_000_000 + self.hz / 2) / self.hz);
        }
        let cy = c as u128;
        let hz = self.hz as u128;
        Nanos::new(((cy * 1_000_000_000 + hz / 2) / hz) as u64)
    }

    /// Converts a cycle count to fractional seconds.
    pub fn secs_from_cycles(self, cy: Cycles) -> f64 {
        cy.raw() as f64 / self.hz as f64
    }

    /// Returns the cycle count corresponding to one period of `rate_hz`
    /// events per second, i.e. the mean inter-arrival time.
    ///
    /// Returns [`Cycles::MAX`] for a zero rate ("never").
    pub fn interval_for_rate(self, rate_hz: f64) -> Cycles {
        if rate_hz <= 0.0 {
            return Cycles::MAX;
        }
        let cy = self.hz as f64 / rate_hz;
        Cycles::new(cy.round() as u64)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz % 1_000_000 == 0 {
            write!(f, "{}MHz", self.hz / 1_000_000)
        } else {
            write!(f, "{}Hz", self.hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(30);
        assert_eq!(a + b, Cycles::new(130));
        assert_eq!(a - b, Cycles::new(70));
        assert_eq!(b - a, Cycles::ZERO, "subtraction saturates");
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn cycles_fraction() {
        assert_eq!(Cycles::new(25).fraction_of(Cycles::new(100)), 0.25);
        assert_eq!(Cycles::new(25).fraction_of(Cycles::ZERO), 0.0);
    }

    #[test]
    fn cycles_sum() {
        let total: Cycles = [1, 2, 3].iter().map(|&x| Cycles::new(x)).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn exact_nanos_per_cycle_matches_dividing_path() {
        // Whole-ns periods expose the multiplier; it must agree with the
        // dividing conversion everywhere it applies.
        for (freq, k) in [
            (Freq::mhz(100), 10),
            (Freq::mhz(500), 2),
            (Freq::mhz(1000), 1),
            (Freq::hz(1_000_000_000), 1),
        ] {
            assert_eq!(freq.exact_nanos_per_cycle(), Some(k));
            for c in [0u64, 1, 7, 1 << 20, u64::MAX / k] {
                assert_eq!(
                    Nanos::new(c * k),
                    freq.nanos_from_cycles(Cycles::new(c)),
                    "hz={} c={c}",
                    freq.as_hz()
                );
            }
        }
        // Fractional-ns periods (e.g. 3 GHz: 1/3 ns) have no exact
        // multiplier.
        assert_eq!(Freq::mhz(3000).exact_nanos_per_cycle(), None);
        assert_eq!(Freq::hz(7).exact_nanos_per_cycle(), None);
    }

    #[test]
    fn freq_conversions_round_trip() {
        let f = Freq::mhz(100);
        assert_eq!(f.cycles_from_micros(1), Cycles::new(100));
        assert_eq!(f.cycles_from_millis(1), Cycles::new(100_000));
        assert_eq!(f.nanos_from_cycles(Cycles::new(100)), Nanos::from_micros(1));
        assert_eq!(f.cycles_from_nanos(Nanos::new(10)), Cycles::new(1));
        assert_eq!(
            f.cycles_from_nanos(Nanos::new(15)),
            Cycles::new(2),
            "rounds"
        );
    }

    #[test]
    fn freq_no_overflow_on_long_durations() {
        let f = Freq::hz(3_000_000_000);
        // One hour at 3 GHz exceeds u64 if multiplied naively in ns*hz.
        let one_hour = Nanos::from_secs(3600);
        assert_eq!(
            f.cycles_from_nanos(one_hour),
            Cycles::new(3_000_000_000 * 3600)
        );
    }

    #[test]
    fn interval_for_rate() {
        let f = Freq::mhz(100);
        // 10_000 packets/s at 100 MHz = 10_000 cycles apart.
        assert_eq!(f.interval_for_rate(10_000.0), Cycles::new(10_000));
        assert_eq!(f.interval_for_rate(0.0), Cycles::MAX);
        assert_eq!(f.interval_for_rate(-5.0), Cycles::MAX);
    }

    #[test]
    fn ethernet_min_frame_rate_constant() {
        // Sanity-check the paper's 14,880 pkts/s figure: a minimum Ethernet
        // frame occupies 67.2 us of a 10 Mbit/s wire (preamble 8 + frame 64 +
        // inter-frame gap 12 bytes).
        let f = Freq::mhz(100);
        let frame_ns = (8 + 64 + 12) * 8 * 100; // bits * 100 ns/bit at 10 Mb/s
        assert_eq!(frame_ns, 67_200);
        let per_frame = f.cycles_from_nanos(Nanos::new(frame_ns));
        let rate = f.as_hz() as f64 / per_frame.raw() as f64;
        assert!((rate - 14_880.0).abs() < 100.0, "rate = {rate}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Cycles::new(42)), "42cy");
        assert_eq!(format!("{}", Nanos::new(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", Nanos::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Freq::mhz(100)), "100MHz");
    }
}
