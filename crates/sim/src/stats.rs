//! Statistics containers for experiment measurement.
//!
//! The experiment harness measures delivered packet rates, latency
//! distributions and CPU-time breakdowns. These containers are plain
//! value types with no interior mutability, so trials stay deterministic.

use core::fmt;

use crate::time::{Cycles, Freq, Nanos};

/// A saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean and variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns the number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the sample variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Returns the sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Returns the smallest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Returns the largest sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// A logarithmically bucketed histogram of durations, for latency and jitter.
///
/// Buckets are powers of two in nanoseconds, giving ~2x resolution over a
/// huge dynamic range with constant memory — adequate for the paper's
/// qualitative latency discussion (§4.3).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    stats: MeanVar,
}

const HIST_BUCKETS: usize = 64;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            stats: MeanVar::new(),
        }
    }

    fn bucket_for(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records a duration.
    pub fn record(&mut self, d: Nanos) {
        self.buckets[Self::bucket_for(d.raw())] += 1;
        self.stats.record(d.raw() as f64);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Returns the mean duration.
    pub fn mean(&self) -> Nanos {
        Nanos::new(self.stats.mean() as u64)
    }

    /// Returns the standard deviation of the recorded durations, a proxy for
    /// jitter.
    pub fn jitter(&self) -> Nanos {
        Nanos::new(self.stats.stddev() as u64)
    }

    /// Returns the maximum recorded duration.
    pub fn max(&self) -> Nanos {
        Nanos::new(self.stats.max().unwrap_or(0.0) as u64)
    }

    /// Returns the minimum recorded duration.
    pub fn min(&self) -> Nanos {
        Nanos::new(self.stats.min().unwrap_or(0.0) as u64)
    }

    /// Returns an upper bound for the q-quantile (0.0 ≤ q ≤ 1.0) duration.
    ///
    /// The bound is the top edge of the bucket containing the quantile, so it
    /// is within 2x of the true value.
    pub fn quantile(&self, q: f64) -> Nanos {
        let total = self.count();
        if total == 0 {
            return Nanos::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let top = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return Nanos::new(top);
            }
        }
        Nanos::new(u64::MAX)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A time series of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(Cycles, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample.
    pub fn push(&mut self, at: Cycles, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be monotonic");
        }
        self.points.push((at, value));
    }

    /// Returns the recorded samples.
    pub fn points(&self) -> &[(Cycles, f64)] {
        &self.points
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the mean of values sampled within `[from, to)`.
    pub fn mean_in(&self, from: Cycles, to: Cycles) -> Option<f64> {
        let mut acc = MeanVar::new();
        for &(t, v) in &self.points {
            if t >= from && t < to {
                acc.record(v);
            }
        }
        if acc.count() == 0 {
            None
        } else {
            Some(acc.mean())
        }
    }
}

/// Counts events inside a measurement window and converts to a rate.
///
/// The paper reports averaged rates over each trial (sampling interface
/// counters before and after); `RateWindow` reproduces that: only events
/// inside `[start, end)` count.
#[derive(Clone, Copy, Debug)]
pub struct RateWindow {
    start: Cycles,
    end: Cycles,
    count: u64,
}

impl RateWindow {
    /// Creates a window covering `[start, end)`.
    pub fn new(start: Cycles, end: Cycles) -> Self {
        RateWindow {
            start,
            end,
            count: 0,
        }
    }

    /// Records an event at time `t` if it falls inside the window.
    pub fn record(&mut self, t: Cycles) {
        if t >= self.start && t < self.end {
            self.count += 1;
        }
    }

    /// Returns the number of in-window events.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the window bounds.
    pub fn bounds(&self) -> (Cycles, Cycles) {
        (self.start, self.end)
    }

    /// Returns the event rate in events/second given the CPU frequency.
    pub fn rate_per_sec(&self, freq: Freq) -> f64 {
        let span = freq.secs_from_cycles(self.end - self.start);
        if span <= 0.0 {
            0.0
        } else {
            self.count as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturates");
    }

    #[test]
    fn meanvar_known_values() {
        let mut m = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn meanvar_empty() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Nanos::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let median = h.quantile(0.5);
        // True median 500us; bucketed bound must be within 2x above it.
        assert!(median >= Nanos::from_micros(500));
        assert!(median <= Nanos::from_micros(1100), "median bound {median}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert_eq!(h.mean(), Nanos::new(500_500));
        assert_eq!(h.max(), Nanos::from_micros(1000));
        assert_eq!(h.min(), Nanos::from_micros(1));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), Nanos::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_zero_duration() {
        let mut h = Histogram::new();
        h.record(Nanos::ZERO);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn time_series_mean_in_window() {
        let mut ts = TimeSeries::new();
        ts.push(Cycles::new(0), 1.0);
        ts.push(Cycles::new(10), 3.0);
        ts.push(Cycles::new(20), 100.0);
        assert_eq!(ts.mean_in(Cycles::new(0), Cycles::new(20)), Some(2.0));
        assert_eq!(ts.mean_in(Cycles::new(30), Cycles::new(40)), None);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(Cycles::new(10), 1.0);
        ts.push(Cycles::new(5), 2.0);
    }

    #[test]
    fn rate_window_counts_and_rates() {
        let freq = Freq::mhz(100);
        // A 1-second window at 100 MHz.
        let mut w = RateWindow::new(Cycles::new(0), freq.cycles_from_secs(1));
        for i in 0..5000u64 {
            w.record(Cycles::new(i * 10_000));
        }
        // Events at t >= 1s fall outside.
        w.record(freq.cycles_from_secs(1));
        w.record(freq.cycles_from_secs(2));
        assert_eq!(w.count(), 5000);
        assert!((w.rate_per_sec(freq) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_window_empty_span() {
        let w = RateWindow::new(Cycles::new(5), Cycles::new(5));
        assert_eq!(w.rate_per_sec(Freq::mhz(100)), 0.0);
    }
}
