//! Statistics containers for experiment measurement.
//!
//! The experiment harness measures delivered packet rates, latency
//! distributions and CPU-time breakdowns. These containers are plain
//! value types with no interior mutability, so trials stay deterministic.

use core::fmt;

use crate::time::{Cycles, Freq, Nanos};

/// A saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean and variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Returns the number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns the sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the sample variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Returns the sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Returns the smallest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Returns the largest sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Folds another accumulator into this one (Chan et al. parallel
    /// combine). The merged mean/variance equal those of the concatenated
    /// sample streams up to floating-point rounding.
    pub fn merge(&mut self, other: &MeanVar) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n = self.n.saturating_add(other.n);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A logarithmically bucketed histogram of durations, for latency and jitter.
///
/// Buckets are powers of two in nanoseconds, giving ~2x resolution over a
/// huge dynamic range with constant memory — adequate for the paper's
/// qualitative latency discussion (§4.3).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    stats: MeanVar,
}

const HIST_BUCKETS: usize = 64;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            stats: MeanVar::new(),
        }
    }

    fn bucket_for(ns: u64) -> usize {
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Records a duration.
    pub fn record(&mut self, d: Nanos) {
        self.buckets[Self::bucket_for(d.raw())] += 1;
        self.stats.record(d.raw() as f64);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Returns the mean duration.
    pub fn mean(&self) -> Nanos {
        Nanos::new(self.stats.mean() as u64)
    }

    /// Returns the standard deviation of the recorded durations, a proxy for
    /// jitter.
    pub fn jitter(&self) -> Nanos {
        Nanos::new(self.stats.stddev() as u64)
    }

    /// Returns the maximum recorded duration.
    pub fn max(&self) -> Nanos {
        Nanos::new(self.stats.max().unwrap_or(0.0) as u64)
    }

    /// Returns the minimum recorded duration.
    pub fn min(&self) -> Nanos {
        Nanos::new(self.stats.min().unwrap_or(0.0) as u64)
    }

    /// Returns an upper bound for the q-quantile (0.0 ≤ q ≤ 1.0) duration.
    ///
    /// The bound is the top edge of the bucket containing the quantile, so it
    /// is within 2x of the true value.
    pub fn quantile(&self, q: f64) -> Nanos {
        let total = self.count();
        if total == 0 {
            return Nanos::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let top = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return Nanos::new(top);
            }
        }
        Nanos::new(u64::MAX)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Number of linear sub-buckets per power-of-two octave in [`HdrHistogram`]
/// (trades memory for quantile resolution; 32 gives ≤ 1/32 ≈ 3.1% relative
/// error on any reported quantile bound).
const HDR_SUB_BUCKETS: u64 = 32;
const HDR_SUB_BITS: u32 = HDR_SUB_BUCKETS.trailing_zeros();
/// Octaves above the exact range `[0, HDR_SUB_BUCKETS)`: msb positions
/// `HDR_SUB_BITS ..= 63`.
const HDR_OCTAVES: usize = 64 - HDR_SUB_BITS as usize;
const HDR_BUCKETS: usize = HDR_SUB_BUCKETS as usize * (1 + HDR_OCTAVES);

/// A high-dynamic-range histogram of durations: log2 octaves split into
/// linear sub-buckets, HdrHistogram-style.
///
/// Where [`Histogram`] quantile bounds are within 2x of the true value,
/// this one is within ~3% (1/[`HDR_SUB_BUCKETS`] relative error), which is
/// what tail quantiles like p99.9 need to be meaningful. Values below
/// [`HDR_SUB_BUCKETS`] ns are recorded exactly. All storage is allocated
/// up front in [`HdrHistogram::new`]; recording never allocates, so it is
/// safe on the zero-allocation packet path.
#[derive(Clone, Debug, PartialEq)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    sum: u64,
    stats: MeanVar,
}

impl HdrHistogram {
    /// Creates an empty histogram with all buckets preallocated.
    pub fn new() -> Self {
        HdrHistogram {
            counts: vec![0; HDR_BUCKETS],
            sum: 0,
            stats: MeanVar::new(),
        }
    }

    fn index_for(v: u64) -> usize {
        if v < HDR_SUB_BUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let octave = (msb - HDR_SUB_BITS) as usize;
        let sub = ((v >> (msb - HDR_SUB_BITS)) - HDR_SUB_BUCKETS) as usize;
        (octave + 1) * HDR_SUB_BUCKETS as usize + sub
    }

    /// Returns the largest value mapping to bucket `i` (the bound quantiles
    /// report).
    fn bucket_top(i: usize) -> u64 {
        let sub = HDR_SUB_BUCKETS as usize;
        if i < sub {
            return i as u64;
        }
        let octave = (i / sub - 1) as u32;
        let low = ((i % sub) as u64 + HDR_SUB_BUCKETS) << octave;
        low + ((1u64 << octave) - 1)
    }

    /// Records a duration.
    pub fn record(&mut self, d: Nanos) {
        self.counts[Self::index_for(d.raw())] += 1;
        self.sum = self.sum.saturating_add(d.raw());
        self.stats.record(d.raw() as f64);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Returns the exact sum of recorded durations (saturating).
    pub fn sum(&self) -> Nanos {
        Nanos::new(self.sum)
    }

    /// Returns the exact mean duration.
    pub fn mean(&self) -> Nanos {
        Nanos::new(self.stats.mean() as u64)
    }

    /// Returns the standard deviation of recorded durations (jitter proxy).
    pub fn jitter(&self) -> Nanos {
        Nanos::new(self.stats.stddev() as u64)
    }

    /// Returns the exact minimum recorded duration.
    pub fn min(&self) -> Nanos {
        Nanos::new(self.stats.min().unwrap_or(0.0) as u64)
    }

    /// Returns the exact maximum recorded duration.
    pub fn max(&self) -> Nanos {
        Nanos::new(self.stats.max().unwrap_or(0.0) as u64)
    }

    /// Returns an upper bound for the q-quantile (0.0 ≤ q ≤ 1.0) duration:
    /// the top edge of the bucket holding the quantile, within ~3% above
    /// the true sample value.
    pub fn quantile(&self, q: f64) -> Nanos {
        let total = self.count();
        if total == 0 {
            return Nanos::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report a bound above the exact observed maximum.
                return Nanos::new(Self::bucket_top(i)).min(self.max());
            }
        }
        self.max()
    }

    /// Empties the histogram in place without touching its allocation:
    /// bucket counts, the sum and the moment statistics all return to
    /// the freshly-created state. For sliding-window uses that need a
    /// fresh distribution per window on the zero-allocation path.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.sum = 0;
        self.stats = MeanVar::new();
    }

    /// Folds another histogram into this one. Counts, sums and extrema
    /// merge exactly; the merged result is independent of merge order.
    /// Bucket counts saturate instead of wrapping, like every other
    /// counter in this module.
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.stats.merge(&other.stats);
    }
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

/// A time series of `(time, value)` samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(Cycles, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample; times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample.
    pub fn push(&mut self, at: Cycles, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be monotonic");
        }
        self.points.push((at, value));
    }

    /// Returns the recorded samples.
    pub fn points(&self) -> &[(Cycles, f64)] {
        &self.points
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the mean of values sampled within `[from, to)`.
    pub fn mean_in(&self, from: Cycles, to: Cycles) -> Option<f64> {
        let mut acc = MeanVar::new();
        for &(t, v) in &self.points {
            if t >= from && t < to {
                acc.record(v);
            }
        }
        if acc.count() == 0 {
            None
        } else {
            Some(acc.mean())
        }
    }

    /// Halves the sample count by dropping every second sample (the
    /// first, third, ... are kept), bounding memory for long-running
    /// samplers: when a series hits its budget, decimate and double the
    /// sampling interval, keeping a uniform grid at half the resolution.
    pub fn decimate(&mut self) {
        let mut keep = 0;
        for i in (0..self.points.len()).step_by(2) {
            self.points[keep] = self.points[i];
            keep += 1;
        }
        self.points.truncate(keep);
    }
}

/// Counts events inside a measurement window and converts to a rate.
///
/// The paper reports averaged rates over each trial (sampling interface
/// counters before and after); `RateWindow` reproduces that: only events
/// inside `[start, end)` count.
#[derive(Clone, Copy, Debug)]
pub struct RateWindow {
    start: Cycles,
    end: Cycles,
    count: u64,
}

impl RateWindow {
    /// Creates a window covering `[start, end)`.
    pub fn new(start: Cycles, end: Cycles) -> Self {
        RateWindow {
            start,
            end,
            count: 0,
        }
    }

    /// Records an event at time `t` if it falls inside the window.
    pub fn record(&mut self, t: Cycles) {
        if t >= self.start && t < self.end {
            self.count += 1;
        }
    }

    /// Returns the number of in-window events.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the window bounds.
    pub fn bounds(&self) -> (Cycles, Cycles) {
        (self.start, self.end)
    }

    /// Folds another window's count into this one. Intended for
    /// aggregating per-CPU windows installed with identical bounds
    /// (SMP trials give every kernel the same measurement window); the
    /// merged rate then reads off this window's own span.
    pub fn merge(&mut self, other: &RateWindow) {
        self.count += other.count;
    }

    /// Returns the event rate in events/second given the CPU frequency.
    pub fn rate_per_sec(&self, freq: Freq) -> f64 {
        let span = freq.secs_from_cycles(self.end - self.start);
        if span <= 0.0 {
            0.0
        } else {
            self.count as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturates");
    }

    #[test]
    fn meanvar_known_values() {
        let mut m = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn meanvar_empty() {
        let m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Nanos::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let median = h.quantile(0.5);
        // True median 500us; bucketed bound must be within 2x above it.
        assert!(median >= Nanos::from_micros(500));
        assert!(median <= Nanos::from_micros(1100), "median bound {median}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert_eq!(h.mean(), Nanos::new(500_500));
        assert_eq!(h.max(), Nanos::from_micros(1000));
        assert_eq!(h.min(), Nanos::from_micros(1));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), Nanos::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_zero_duration() {
        let mut h = Histogram::new();
        h.record(Nanos::ZERO);
        assert_eq!(h.count(), 1);
    }

    /// A deterministic splitmix64 stream for generating test samples.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Checks every reported quantile bound against a sorted-vector
    /// oracle: at least the true sample value, at most ~3.2% above it
    /// (one sub-bucket width), and never above the observed maximum.
    fn check_hdr_against_oracle(values: &[u64]) {
        let mut h = HdrHistogram::new();
        for &v in values {
            h.record(Nanos::new(v));
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min(), Nanos::new(sorted[0]));
        assert_eq!(h.max(), Nanos::new(*sorted.last().unwrap()));
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let truth = sorted[target - 1];
            let bound = h.quantile(q).raw();
            assert!(bound >= truth, "q={q}: bound {bound} < true {truth}");
            let slack = (truth + truth / HDR_SUB_BUCKETS + 1).min(*sorted.last().unwrap());
            assert!(bound <= slack, "q={q}: bound {bound} > {slack} (true {truth})");
        }
    }

    #[test]
    fn hdr_quantiles_match_sorted_vector_oracle() {
        // Small values are exact; the wide-range stream exercises octaves.
        check_hdr_against_oracle(&(0..=31u64).collect::<Vec<_>>());
        check_hdr_against_oracle(&[7]);
        let mut rng = 0xfeed_u64;
        for octaves in [10, 30, 50] {
            let wide: Vec<u64> = (0..5_000)
                .map(|_| splitmix(&mut rng) >> (64 - octaves))
                .collect();
            check_hdr_against_oracle(&wide);
        }
    }

    #[test]
    fn hdr_merge_matches_concatenation_and_is_order_independent() {
        let mut rng = 0xabcd_u64;
        let streams: Vec<Vec<u64>> = [16, 40, 56]
            .iter()
            .map(|&shift| {
                (0..1_000)
                    .map(|_| splitmix(&mut rng) >> shift)
                    .collect::<Vec<u64>>()
            })
            .collect();
        let parts: Vec<HdrHistogram> = streams
            .iter()
            .map(|s| {
                let mut h = HdrHistogram::new();
                for &v in s {
                    h.record(Nanos::new(v));
                }
                h
            })
            .collect();
        let mut whole = HdrHistogram::new();
        for s in &streams {
            for &v in s {
                whole.record(Nanos::new(v));
            }
        }

        // (a ⊕ b) ⊕ c and c ⊕ (b ⊕ a): counts, sums, extrema and every
        // quantile bound agree exactly with the single concatenated
        // recording, whatever the merge order.
        let mut fwd = parts[0].clone();
        fwd.merge(&parts[1]);
        fwd.merge(&parts[2]);
        let mut rev = parts[2].clone();
        rev.merge(&parts[1]);
        rev.merge(&parts[0]);
        for m in [&fwd, &rev] {
            assert_eq!(m.count(), whole.count());
            assert_eq!(m.sum(), whole.sum());
            assert_eq!(m.min(), whole.min());
            assert_eq!(m.max(), whole.max());
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(m.quantile(q), whole.quantile(q), "q={q}");
            }
            // The mean folds through floating point: equal to the
            // concatenated stream's up to rounding, not bit-for-bit.
            let err = (m.mean().raw() as i64 - whole.mean().raw() as i64).abs();
            assert!(err <= 1, "merged mean off by {err} ns");
        }
    }

    #[test]
    fn hdr_merge_with_empty_is_identity() {
        let mut h = HdrHistogram::new();
        h.record(Nanos::new(1_000));
        h.record(Nanos::new(2_000_000));
        let snapshot = h.clone();
        h.merge(&HdrHistogram::new());
        assert_eq!(h, snapshot);
        let mut e = HdrHistogram::new();
        e.merge(&snapshot);
        assert_eq!(e.count(), 2);
        assert_eq!(e.quantile(1.0), snapshot.quantile(1.0));
    }

    #[test]
    fn hdr_empty_quantiles_are_zero() {
        let h = HdrHistogram::new();
        assert!(h.is_empty());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Nanos::ZERO, "q={q}");
        }
        assert_eq!(h.min(), Nanos::ZERO);
        assert_eq!(h.max(), Nanos::ZERO);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.sum(), Nanos::ZERO);
    }

    #[test]
    fn hdr_single_sample_every_quantile_is_that_sample() {
        for v in [0u64, 1, 31, 32, 1_000_000, u64::MAX >> 11] {
            let mut h = HdrHistogram::new();
            h.record(Nanos::new(v));
            assert_eq!(h.count(), 1);
            for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
                // One sample: every quantile bound is clamped to the
                // observed maximum, i.e. the sample itself.
                assert_eq!(h.quantile(q), Nanos::new(v), "v={v} q={q}");
            }
            assert_eq!(h.min(), Nanos::new(v));
            assert_eq!(h.max(), Nanos::new(v));
        }
    }

    #[test]
    fn hdr_merge_saturates_bucket_counts() {
        // Self-merging doubles every bucket count; 64 doublings pushes a
        // single-sample bucket past u64::MAX, which must saturate, not
        // wrap to zero (wrapping would erase the sample and its quantile).
        let mut h = HdrHistogram::new();
        h.record(Nanos::new(7));
        for _ in 0..64 {
            let snapshot = h.clone();
            h.merge(&snapshot);
        }
        assert_eq!(h.count(), u64::MAX, "count saturated");
        assert_eq!(h.quantile(0.5), Nanos::new(7), "sample survives");
        assert_eq!(h.quantile(1.0), Nanos::new(7));
        assert_eq!(h.max(), Nanos::new(7));

        // The duration sum saturates the same way.
        let mut big = HdrHistogram::new();
        big.record(Nanos::new(u64::MAX >> 1));
        let mut sum = big.clone();
        sum.merge(&big);
        sum.merge(&big);
        assert_eq!(sum.sum(), Nanos::new(u64::MAX), "sum saturated");
        assert_eq!(sum.count(), 3);
        assert_eq!(sum.quantile(1.0), Nanos::new(u64::MAX >> 1));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn hdr_quantile_bound_stays_close_above_oracle(
            // Stay below 2^53: the exact min/max pass through an f64
            // accumulator, which would round larger values.
            values in proptest::collection::vec(0u64..(1u64 << 53), 1..300),
        ) {
            check_hdr_against_oracle(&values);
        }

        #[test]
        fn hdr_merge_never_loses_samples(
            a in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
            b in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
        ) {
            let mut ha = HdrHistogram::new();
            for &v in &a { ha.record(Nanos::new(v)); }
            let mut hb = HdrHistogram::new();
            for &v in &b { hb.record(Nanos::new(v)); }
            ha.merge(&hb);
            prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
            prop_assert_eq!(
                ha.sum().raw(),
                a.iter().sum::<u64>() + b.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn time_series_mean_in_window() {
        let mut ts = TimeSeries::new();
        ts.push(Cycles::new(0), 1.0);
        ts.push(Cycles::new(10), 3.0);
        ts.push(Cycles::new(20), 100.0);
        assert_eq!(ts.mean_in(Cycles::new(0), Cycles::new(20)), Some(2.0));
        assert_eq!(ts.mean_in(Cycles::new(30), Cycles::new(40)), None);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn time_series_rejects_backwards_time() {
        let mut ts = TimeSeries::new();
        ts.push(Cycles::new(10), 1.0);
        ts.push(Cycles::new(5), 2.0);
    }

    #[test]
    fn time_series_decimate_keeps_even_indices() {
        let mut ts = TimeSeries::new();
        for i in 0..5u64 {
            ts.push(Cycles::new(i * 10), i as f64);
        }
        ts.decimate();
        assert_eq!(
            ts.points(),
            &[
                (Cycles::new(0), 0.0),
                (Cycles::new(20), 2.0),
                (Cycles::new(40), 4.0)
            ]
        );
        // Decimating again halves again; an empty series stays empty.
        ts.decimate();
        assert_eq!(ts.len(), 2);
        let mut empty = TimeSeries::new();
        empty.decimate();
        assert!(empty.is_empty());
    }

    #[test]
    fn rate_window_counts_and_rates() {
        let freq = Freq::mhz(100);
        // A 1-second window at 100 MHz.
        let mut w = RateWindow::new(Cycles::new(0), freq.cycles_from_secs(1));
        for i in 0..5000u64 {
            w.record(Cycles::new(i * 10_000));
        }
        // Events at t >= 1s fall outside.
        w.record(freq.cycles_from_secs(1));
        w.record(freq.cycles_from_secs(2));
        assert_eq!(w.count(), 5000);
        assert!((w.rate_per_sec(freq) - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_window_empty_span() {
        let w = RateWindow::new(Cycles::new(5), Cycles::new(5));
        assert_eq!(w.rate_per_sec(Freq::mhz(100)), 0.0);
    }
}
