//! The pluggable event-scheduler interface the executor runs against.
//!
//! Two backends implement it: the reference binary-heap
//! [`EventQueue`](crate::event::EventQueue) (O(log n), trivially correct)
//! and the [`CalendarQueue`](crate::calendar::CalendarQueue) (amortized
//! O(1) under steady event density). Property tests prove the two dequeue
//! in exactly the same order — including FIFO tie-breaks — so the engine
//! can swap backends without perturbing a single simulated cycle.
//!
//! `peek_time` takes `&mut self` even though it is logically a read: the
//! calendar backend answers it from a lazily maintained min cache (a year
//! scan primes the cache; schedule keeps it valid in O(1); pop invalidates
//! it), and that interior bookkeeping is ordinary mutation, not interior
//! mutability. The heap backend simply delegates to its `&self` peek.

use crate::time::Cycles;
use crate::{CalendarQueue, EventQueue};

/// A time-ordered event scheduler with FIFO tie-breaking at equal times.
///
/// The contract every backend must honor, in the executor's terms:
///
/// * events pop in ascending `(time, schedule-order)` — bit-stable across
///   backends;
/// * `schedule` never reorders already-pending events;
/// * `pop_due(now)` removes the head only if it is due at or before `now`.
pub trait Scheduler<E> {
    /// Schedules `payload` for delivery at absolute time `at`.
    fn schedule(&mut self, at: Cycles, payload: E);

    /// Returns the time of the earliest pending event, if any.
    fn peek_time(&mut self) -> Option<Cycles>;

    /// Removes and returns the earliest event as `(time, payload)`.
    fn pop(&mut self) -> Option<(Cycles, E)>;

    /// Removes the earliest event only if it is due at or before `now`.
    fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)>;

    /// Drains every event due at or before `now` into `out`, in pop
    /// order, returning how many were appended. Equivalent to calling
    /// [`pop_due`](Scheduler::pop_due) until it returns `None`, but lets
    /// the executor dispatch a same-cycle burst in one pass over a reused
    /// buffer instead of re-entering its step loop per event.
    fn pop_due_batch(&mut self, now: Cycles, out: &mut Vec<(Cycles, E)>) -> usize {
        let before = out.len();
        while let Some(ev) = self.pop_due(now) {
            out.push(ev);
        }
        out.len() - before
    }

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Returns `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn schedule(&mut self, at: Cycles, payload: E) {
        EventQueue::schedule(self, at, payload);
    }

    fn peek_time(&mut self) -> Option<Cycles> {
        EventQueue::peek_time(self)
    }

    fn pop(&mut self) -> Option<(Cycles, E)> {
        EventQueue::pop(self)
    }

    fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        EventQueue::pop_due(self, now)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }
}

impl<E> Scheduler<E> for CalendarQueue<E> {
    fn schedule(&mut self, at: Cycles, payload: E) {
        CalendarQueue::schedule(self, at, payload);
    }

    fn peek_time(&mut self) -> Option<Cycles> {
        CalendarQueue::peek_time(self)
    }

    fn pop(&mut self) -> Option<(Cycles, E)> {
        CalendarQueue::pop(self)
    }

    fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        CalendarQueue::pop_due(self, now)
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<S: Scheduler<u32>>(q: &mut S) -> Vec<(u64, u32)> {
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(10), 2);
        q.schedule(Cycles::new(40), 4);
        assert_eq!(q.peek_time(), Some(Cycles::new(10)));
        assert_eq!(q.len(), 4);
        let mut out = Vec::new();
        // Same-cycle batch drain: both t=10 events, FIFO order.
        assert_eq!(q.pop_due_batch(Cycles::new(30), &mut out), 3);
        assert_eq!(q.pop_due(Cycles::new(35)), None);
        while let Some(ev) = q.pop() {
            out.push(ev);
        }
        assert!(q.is_empty());
        out.into_iter().map(|(t, v)| (t.raw(), v)).collect()
    }

    #[test]
    fn both_backends_honor_the_trait_contract_identically() {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new(Cycles::new(10));
        let a = drive(&mut heap);
        let b = drive(&mut cal);
        assert_eq!(a, vec![(10, 1), (10, 2), (30, 3), (40, 4)]);
        assert_eq!(a, b);
    }
}
