//! A calendar queue: O(1) amortized event scheduling for dense timelines.
//!
//! Discrete-event simulators with steady event rates (like a router under
//! constant packet load) spend measurable time in the priority queue. A
//! calendar queue (Brown 1988) buckets events by time modulo a rotating
//! "year" and dequeues in O(1) amortized when the event-density assumption
//! holds, degrading gracefully (by resizing) when it does not.
//!
//! The API mirrors [`EventQueue`](crate::event::EventQueue) — including the
//! FIFO tie-break — and a property test in this module proves the two
//! dequeue in exactly the same order, so either can back the engine.

use crate::time::Cycles;

struct Entry<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

/// A calendar-queue event scheduler with FIFO tie-breaking.
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events with `(at / width) % buckets.len() == i`,
    /// each bucket sorted ascending by (at, seq) — kept sorted on insert
    /// (buckets are short when sized right).
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in cycles.
    width: u64,
    /// Current dequeue position: the bucket holding `cursor_time`.
    cursor_bucket: usize,
    /// Lower bound of the time range the cursor bucket is being scanned
    /// for in the current year.
    cursor_time: u64,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the given expected inter-event spacing
    /// (the bucket width; any positive value is correct, a value near the
    /// mean spacing is fast).
    pub fn new(expected_spacing: Cycles) -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            width: expected_spacing.raw().max(1),
            cursor_bucket: 0,
            cursor_time: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: Cycles) -> usize {
        ((at.raw() / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before an already-dequeued event (time cannot run
    /// backwards).
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        assert!(
            at.raw() >= self.cursor_time.saturating_sub(self.width),
            "scheduling into the past"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(at);
        let bucket = &mut self.buckets[idx];
        let pos = bucket.partition_point(|e| (e.at, e.seq) <= (at, seq));
        bucket.insert(pos, Entry { at, seq, payload });
        self.len += 1;
        if self.len > self.buckets.len() * 4 {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn resize(&mut self, new_size: usize) {
        let mut all: Vec<Entry<E>> = self.buckets.drain(..).flatten().collect();
        all.sort_by_key(|e| (e.at, e.seq));
        // Re-derive the width from the observed spacing of pending events.
        if all.len() >= 2 {
            let span = all.last().expect("len >= 2").at.raw() - all[0].at.raw();
            self.width = (span / all.len() as u64).max(1);
        }
        self.buckets = (0..new_size).map(|_| Vec::new()).collect();
        let old_len = self.len;
        self.len = 0;
        let floor = self.cursor_time;
        for e in all {
            let idx = ((e.at.raw() / self.width) % new_size as u64) as usize;
            self.buckets[idx].push(e);
            self.len += 1;
        }
        debug_assert_eq!(self.len, old_len);
        // Restart the scan from the earliest pending time.
        self.cursor_time = floor.min(self.min_time().map_or(floor, |t| t.raw()));
        self.cursor_bucket = ((self.cursor_time / self.width) % new_size as u64) as usize;
    }

    fn min_time(&self) -> Option<Cycles> {
        self.buckets
            .iter()
            .filter_map(|b| b.first().map(|e| e.at))
            .min()
    }

    /// Returns the time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        if self.is_empty() {
            return None;
        }
        // O(buckets) fallback scan is fine: peek is not the hot path, and
        // correctness beats cleverness here.
        self.min_time()
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        if self.is_empty() {
            return None;
        }
        // Scan forward bucket by bucket; each bucket only yields events in
        // its current "year" window [cursor_time, cursor_time + width).
        let n = self.buckets.len();
        loop {
            let window_end = self.cursor_time.saturating_add(self.width);
            let bucket = &mut self.buckets[self.cursor_bucket];
            if let Some(first) = bucket.first() {
                if first.at.raw() < window_end {
                    let e = bucket.remove(0);
                    self.len -= 1;
                    self.cursor_time = e.at.raw();
                    return Some((e.at, e.payload));
                }
            }
            self.cursor_bucket = (self.cursor_bucket + 1) % n;
            self.cursor_time = window_end;
            // A full empty year means the next event is far away: jump.
            if self.cursor_time % (self.width * n as u64) < self.width {
                if let Some(min) = self.min_time() {
                    if min.raw() >= self.cursor_time + self.width * n as u64 {
                        self.cursor_time = min.raw() / self.width * self.width;
                        self.cursor_bucket = ((self.cursor_time / self.width) % n as u64) as usize;
                    }
                }
            }
        }
    }

    /// Removes the earliest event only if due at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        for i in 0..50 {
            q.schedule(Cycles::new(7), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((Cycles::new(7), i)));
        }
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(1_000_000_000), 'z');
        q.schedule(Cycles::new(5), 'a');
        assert_eq!(q.pop(), Some((Cycles::new(5), 'a')));
        assert_eq!(q.pop(), Some((Cycles::new(1_000_000_000), 'z')));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = CalendarQueue::new(Cycles::new(100));
        q.schedule(Cycles::new(100), 1);
        assert_eq!(q.pop(), Some((Cycles::new(100), 1)));
        q.schedule(Cycles::new(150), 2);
        q.schedule(Cycles::new(120), 3);
        assert_eq!(q.pop(), Some((Cycles::new(120), 3)));
        q.schedule(Cycles::new(130), 4);
        assert_eq!(q.pop(), Some((Cycles::new(130), 4)));
        assert_eq!(q.pop(), Some((Cycles::new(150), 2)));
    }

    #[test]
    fn resize_preserves_everything() {
        let mut q = CalendarQueue::new(Cycles::new(1));
        // Force several growth steps.
        for i in 0..1000u64 {
            q.schedule(Cycles::new(i * 13 % 997), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = (Cycles::ZERO, 0u64);
        let mut count = 0;
        let mut prev_at = Cycles::ZERO;
        while let Some((t, v)) = q.pop() {
            assert!(
                t >= prev_at,
                "out of order at {count}: {t:?} after {prev_at:?}"
            );
            prev_at = t;
            last = (t, v);
            count += 1;
        }
        assert_eq!(count, 1000);
        let _ = last;
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(50), 'x');
        assert_eq!(q.pop_due(Cycles::new(49)), None);
        assert_eq!(q.pop_due(Cycles::new(50)), Some((Cycles::new(50), 'x')));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The calendar queue dequeues in exactly the order of the
        /// reference binary-heap queue, including FIFO tie-breaks.
        #[test]
        fn equivalent_to_heap_queue(
            times in proptest::collection::vec(0u64..100_000, 1..400),
            spacing in 1u64..10_000,
        ) {
            let mut cal = CalendarQueue::new(Cycles::new(spacing));
            let mut heap = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                cal.schedule(Cycles::new(t), i);
                heap.schedule(Cycles::new(t), i);
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Interleaved operation: schedule batches between pops, compare.
        #[test]
        fn equivalent_under_interleaving(
            batches in proptest::collection::vec(
                proptest::collection::vec(0u64..50_000, 0..20), 1..20),
        ) {
            let mut cal = CalendarQueue::new(Cycles::new(100));
            let mut heap = EventQueue::new();
            let mut next_id = 0usize;
            let mut floor = 0u64;
            for batch in batches {
                for t in batch {
                    // Keep times monotone-safe for the calendar's cursor.
                    let at = floor + t;
                    cal.schedule(Cycles::new(at), next_id);
                    heap.schedule(Cycles::new(at), next_id);
                    next_id += 1;
                }
                for _ in 0..3 {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(&a, &b);
                    if let Some((t, _)) = a {
                        floor = floor.max(t.raw());
                    }
                }
            }
        }
    }
}
