//! A calendar queue: O(1) amortized event scheduling for dense timelines.
//!
//! Discrete-event simulators with steady event rates (like a router under
//! constant packet load) spend measurable time in the priority queue. A
//! calendar queue (Brown 1988) buckets events by time modulo a rotating
//! "year" and dequeues in O(1) amortized when the event-density assumption
//! holds, degrading gracefully (by resizing) when it does not.
//!
//! The API mirrors [`EventQueue`](crate::event::EventQueue) — including the
//! FIFO tie-break — and a property test in this module proves the two
//! dequeue in exactly the same order, so either can back the engine.
//!
//! Three hot-path properties matter for the engine (which peeks every
//! executor step and pops tens of thousands of events per trial):
//!
//! * buckets are [`VecDeque`]s, so dequeuing the head of a bucket is O(1)
//!   rather than `Vec::remove(0)`'s O(bucket);
//! * the location of the earliest pending event is cached (`next_cache`),
//!   maintained in O(1) on [`schedule`](CalendarQueue::schedule) and
//!   invalidated on [`pop`](CalendarQueue::pop), so repeated
//!   [`peek_time`](CalendarQueue::peek_time) calls between pops cost O(1)
//!   instead of an O(buckets) rescan;
//! * [`resize`](CalendarQueue::schedule) re-derives the bucket width from
//!   the *median* consecutive spacing of the pending events, so a single
//!   far-future outlier (a clock tick scheduled a full period ahead of a
//!   dense packet burst) cannot skew the width the way a `span / len` mean
//!   does.

use std::collections::VecDeque;

use crate::time::Cycles;

struct Entry<E> {
    at: Cycles,
    seq: u64,
    payload: E,
}

/// A calendar-queue event scheduler with FIFO tie-breaking.
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events with `(at / width) % buckets.len() == i`,
    /// each bucket sorted ascending by (at, seq) — kept sorted on insert
    /// (buckets are short when sized right).
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Bucket width in cycles. Always a power of two, so every
    /// `time / width` on the hot paths compiles to a shift by
    /// [`Self::shift`] instead of a 64-bit division.
    width: u64,
    /// `width.trailing_zeros()`: the shift equivalent of dividing by
    /// `width`.
    shift: u32,
    /// Current dequeue position: the bucket holding `cursor_time`.
    cursor_bucket: usize,
    /// Lower bound of the time range the cursor bucket is being scanned
    /// for in the current year.
    cursor_time: u64,
    /// `buckets.len() - 1`. The bucket count is always a power of two
    /// (16 grown by power-of-two factors), so `(at / width) & mask`
    /// replaces the modulo on every hot path.
    mask: u64,
    /// Cached location of the earliest pending event as
    /// `(bucket, time)` — the front of that bucket is the global minimum.
    /// `None` means "not currently known" (not "empty"); [`Self::locate`]
    /// recomputes it on demand.
    next_cache: Option<(usize, Cycles)>,
    /// Occupancy bitmask: bit `i` of word `i / 64` is set exactly when
    /// `buckets[i]` is nonempty. The year scan in [`Self::locate`] and the
    /// far-jump minimum in [`Self::min_time`] hop between set bits instead
    /// of probing every (mostly empty) bucket one at a time.
    nonempty: Vec<u64>,
    /// Events at or past this absolute time live in [`Self::overflow`],
    /// not in the buckets. Grows monotonically as [`Self::locate`] crosses
    /// year boundaries and migrates due years in.
    boundary: u64,
    /// Unsorted far-future events (`at >= boundary`). A timeline scheduled
    /// far ahead (like a whole trial's packet arrivals) would otherwise
    /// leave multiple "years" of events in every bucket, turning each
    /// near-future insert into a sorted mid-bucket splice; parking the far
    /// future here keeps bucket inserts on the append fast path.
    overflow: Vec<Entry<E>>,
    /// Overflow inserts since the last (re)size — a chronically high rate
    /// relative to `len` means the bucket width is far too narrow for the
    /// live event horizon (every event overshoots the year), so the queue
    /// re-derives the width from the pending gaps without growing.
    overflow_pushes: usize,
    len: usize,
    next_seq: u64,
}

const INITIAL_BUCKETS: usize = 16;

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with the given expected inter-event spacing
    /// (the bucket width; any positive value is correct, a value near the
    /// mean spacing is fast).
    pub fn new(expected_spacing: Cycles) -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| VecDeque::new()).collect(),
            width: expected_spacing.raw().max(1).next_power_of_two(),
            shift: expected_spacing.raw().max(1).next_power_of_two().trailing_zeros(),
            cursor_bucket: 0,
            cursor_time: 0,
            mask: INITIAL_BUCKETS as u64 - 1,
            next_cache: None,
            nonempty: vec![0; INITIAL_BUCKETS.div_ceil(64)],
            boundary: expected_spacing.raw().max(1).next_power_of_two() * INITIAL_BUCKETS as u64,
            overflow: Vec::new(),
            overflow_pushes: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, at: Cycles) -> usize {
        ((at.raw() >> self.shift) & self.mask) as usize
    }

    /// Index of the first nonempty bucket at or after `from`, if any.
    fn next_nonempty(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        let mut bits = self.nonempty[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == self.nonempty.len() {
                return None;
            }
            bits = self.nonempty[w];
        }
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before an already-dequeued event (time cannot run
    /// backwards).
    pub fn schedule(&mut self, at: Cycles, payload: E) {
        assert!(
            at.raw() >= self.cursor_time.saturating_sub(self.width),
            "scheduling into the past"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if at.raw() >= self.boundary {
            // Beyond the migrated horizon: park it unsorted; `locate`
            // pulls it into a bucket when the scan reaches its year. The
            // min cache (always earlier than `boundary` when set) is
            // unaffected.
            self.overflow.push(Entry { at, seq, payload });
            self.overflow_pushes += 1;
        } else {
            let idx = self.bucket_of(at);
            let bucket = &mut self.buckets[idx];
            // Fast path: `seq` is the largest ever issued, so an `at` at
            // or past the bucket's tail appends — the overwhelmingly
            // common case (timelines are scheduled roughly in order).
            match bucket.back() {
                Some(b) if (b.at, b.seq) > (at, seq) => {
                    // Second fast path: zero-delay events (handlers posting
                    // work "for right now") land ahead of everything still
                    // pending in their slice — push_front is O(1) and, in
                    // the measured mix, catches half of all non-appends.
                    let lands_in_front = bucket
                        .front()
                        .is_some_and(|front| (front.at, front.seq) > (at, seq));
                    if lands_in_front {
                        bucket.push_front(Entry { at, seq, payload });
                    } else {
                        let pos = bucket.partition_point(|e| (e.at, e.seq) <= (at, seq));
                        bucket.insert(pos, Entry { at, seq, payload });
                    }
                }
                _ => bucket.push_back(Entry { at, seq, payload }),
            }
            self.nonempty[idx / 64] |= 1 << (idx % 64);
            // Maintain the min cache in O(1). A strictly earlier event is
            // the new global minimum, and provably the front of its
            // bucket: every other pending event is >= the old minimum >
            // `at`. An equal-time event keeps the cached front (smaller
            // seq wins the FIFO tie).
            match self.next_cache {
                Some((_, t)) if at < t => self.next_cache = Some((idx, at)),
                None if self.len == 0 => self.next_cache = Some((idx, at)),
                _ => {}
            }
        }
        self.len += 1;
        if self.len > self.buckets.len() * 4 {
            self.resize(self.buckets.len() * 4);
        } else if self.overflow_pushes > 64 && self.overflow_pushes > self.len * 4 {
            // The pending set is small but almost everything overshoots
            // the current year: the width is stale (e.g. sized for a past
            // dense phase, or the initial guess). Re-derive it at the same
            // bucket count so scheduling returns to the in-bucket path.
            self.resize(self.buckets.len());
        }
    }

    /// Samples up to 64 pending event times (deterministic stride over the
    /// buckets) and returns the median *nonzero* gap between consecutive
    /// sampled times, or `None` when every sample collides.
    ///
    /// The mean (span / len) is skewed arbitrarily far by one distant
    /// outlier — e.g. the next clock tick scheduled a full period beyond a
    /// dense burst of packet arrivals — which inflates every bucket's
    /// window and degrades pop back to a linear scan. Zero gaps (same-cycle
    /// bursts) are excluded for the dual reason: they would drive the
    /// median to zero and shrink every bucket window to a single cycle,
    /// making the scan between bursts crawl. The median of what remains
    /// tracks the dense part of the timeline, and a bounded sample keeps
    /// the whole derivation O(1) regardless of queue size (a full sort of
    /// the pending set showed up as the top resize cost in profiles).
    fn sampled_gap_median(&self) -> Option<u64> {
        const MAX_SAMPLE: usize = 64;
        let mut times: Vec<u64> = Vec::with_capacity(MAX_SAMPLE);
        let stride = (self.len / MAX_SAMPLE).max(1);
        let mut skip = 0usize;
        // Walk only the occupied buckets (then the overflow): a sparse
        // table can have thousands of empty buckets per pending event,
        // and this runs inside resize.
        'outer: for (w, &word) in self.nonempty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for e in &self.buckets[b] {
                    if skip == 0 {
                        times.push(e.at.raw());
                        if times.len() == MAX_SAMPLE {
                            break 'outer;
                        }
                        skip = stride - 1;
                    } else {
                        skip -= 1;
                    }
                }
            }
        }
        if times.len() < MAX_SAMPLE {
            for e in &self.overflow {
                if skip == 0 {
                    times.push(e.at.raw());
                    if times.len() == MAX_SAMPLE {
                        break;
                    }
                    skip = stride - 1;
                } else {
                    skip -= 1;
                }
            }
        }
        times.sort_unstable();
        let mut gaps: Vec<u64> = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|&g| g > 0)
            .collect();
        if gaps.is_empty() {
            return None;
        }
        let mid = gaps.len() / 2;
        let (_, &mut median, _) = gaps.select_nth_unstable(mid);
        Some(median.max(1))
    }

    fn resize(&mut self, new_size: usize) {
        if let Some(w) = self.sampled_gap_median() {
            self.width = w.next_power_of_two();
            self.shift = self.width.trailing_zeros();
        }
        // Drain only the occupied buckets (occupancy bits): a sparse
        // table can have thousands of empty buckets per pending event.
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for w in 0..self.nonempty.len() {
            let mut bits = self.nonempty[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                all.extend(self.buckets[b].drain(..));
            }
            self.nonempty[w] = 0;
        }
        all.extend(self.overflow.drain(..));
        debug_assert!(new_size.is_power_of_two());
        if new_size != self.buckets.len() {
            self.mask = new_size as u64 - 1;
            self.buckets = (0..new_size).map(|_| VecDeque::new()).collect();
            self.nonempty = vec![0; new_size.div_ceil(64)];
        }
        let old_len = self.len;
        self.len = 0;
        self.overflow_pushes = 0;
        let floor = self.cursor_time;
        // Re-derive the horizon for the new year length: one full year
        // past the cursor's year stays in the buckets, the rest goes back
        // to the overflow.
        let year = self.width.saturating_mul(self.mask + 1);
        self.boundary = (floor / year).saturating_add(1).saturating_mul(year);
        for e in all {
            if e.at.raw() >= self.boundary {
                self.overflow.push(e);
                self.len += 1;
                continue;
            }
            let idx = ((e.at.raw() >> self.shift) & self.mask) as usize;
            self.buckets[idx].push_back(e);
            self.nonempty[idx / 64] |= 1 << (idx % 64);
            self.len += 1;
        }
        debug_assert_eq!(self.len, old_len);
        // Each bucket must be ascending by (at, seq); sorting the short
        // buckets individually is much cheaper than globally sorting the
        // whole pending set before distribution. (at, seq) is unique, so
        // an unstable sort is deterministic.
        for b in &mut self.buckets {
            if b.len() > 1 {
                b.make_contiguous().sort_unstable_by_key(|e| (e.at, e.seq));
            }
        }
        // Restart the scan from the earliest pending time, and re-prime
        // the min cache from the buckets (an overflow event can never be
        // the minimum while any bucket event exists, and the cache must
        // only ever point at a bucket front).
        let min = self.bucket_min();
        self.cursor_time = floor.min(min.map_or(floor, |t| t.raw()));
        self.cursor_bucket = ((self.cursor_time >> self.shift) & self.mask) as usize;
        self.next_cache = min.map(|t| (self.bucket_of(t), t));
    }

    /// Earliest front across the (sorted) buckets, via the occupancy bits.
    fn bucket_min(&self) -> Option<Cycles> {
        let mut min: Option<Cycles> = None;
        for (w, &word) in self.nonempty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // simlint: allow(panic-freedom): b was derived from a set occupancy bit, and push/pop keep bits in lockstep with bucket emptiness
                let t = self.buckets[b].front().expect("occupancy bit set").at;
                min = Some(min.map_or(t, |m| m.min(t)));
            }
        }
        min
    }

    fn min_time(&self) -> Option<Cycles> {
        // Bucket events are all earlier than `boundary` <= every overflow
        // event, so the overflow only matters when the buckets are empty.
        self.bucket_min()
            .or_else(|| self.overflow.iter().map(|e| e.at).min())
    }

    /// Moves every overflow event earlier than `target` into its bucket
    /// and advances the horizon. Called when the year scan crosses into a
    /// new year, so it runs once per year of virtual time, not per event.
    fn migrate_overflow_below(&mut self, target: u64) {
        if target <= self.boundary {
            return;
        }
        self.boundary = target;
        if self.overflow.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].at.raw() < target {
                let e = self.overflow.swap_remove(i);
                let idx = self.bucket_of(e.at);
                let bucket = &mut self.buckets[idx];
                let pos = bucket.partition_point(|b| (b.at, b.seq) <= (e.at, e.seq));
                bucket.insert(pos, e);
                self.nonempty[idx / 64] |= 1 << (idx % 64);
            } else {
                i += 1;
            }
        }
    }

    /// Locates the bucket whose front is the earliest pending `(at, seq)`
    /// and caches the answer. Runs the calendar year scan with *local*
    /// cursor variables: the real cursor only ever advances in
    /// [`pop`](CalendarQueue::pop), so peeking never changes what
    /// [`schedule`](CalendarQueue::schedule) will accept.
    fn locate(&mut self) -> (usize, Cycles) {
        debug_assert!(self.len > 0, "locate() on an empty queue");
        if let Some(hit) = self.next_cache {
            return hit;
        }
        let n = self.mask as usize + 1;
        let year = self.width * (self.mask + 1);
        let mut bucket = self.cursor_bucket;
        let mut time = self.cursor_time;
        loop {
            // Hop straight to the next occupied bucket; empty ones only
            // contribute `width` to the running time each, so the skip is
            // pure arithmetic. The `bucket == (time / width) & mask`
            // invariant of the plain one-step scan is preserved.
            if let Some(nb) = self.next_nonempty(bucket) {
                time = time.saturating_add((nb - bucket) as u64 * self.width);
                bucket = nb;
                let window_end = time.saturating_add(self.width);
                // simlint: allow(panic-freedom): next_nonempty only returns buckets whose occupancy bit is set
                let first = self.buckets[bucket].front().expect("occupancy bit set");
                if first.at.raw() < window_end {
                    let hit = (bucket, first.at);
                    self.next_cache = Some(hit);
                    return hit;
                }
                // The front belongs to a later year: move past it.
                time = window_end;
                bucket += 1;
            } else {
                time = time.saturating_add((n - bucket) as u64 * self.width);
                bucket = n;
            }
            // Reaching bucket `n` means a year boundary was crossed; a
            // full empty year past the next event's year means it is far
            // away: jump straight to its year.
            if bucket == n {
                bucket = 0;
                if let Some(min) = self.min_time() {
                    if min.raw() >= time + year {
                        time = min.raw() >> self.shift << self.shift;
                        bucket = ((time >> self.shift) & self.mask) as usize;
                    }
                }
                // The scan is about to cover [time, year-end-of(time));
                // pull that range's events out of the overflow first so
                // the window checks below can see them.
                self.migrate_overflow_below(
                    (time / year).saturating_add(1).saturating_mul(year),
                );
            }
        }
    }

    /// Returns the time of the earliest pending event.
    ///
    /// Amortized O(1): answered from the maintained min cache when valid,
    /// otherwise one year scan primes the cache for every following call
    /// until the next [`pop`](CalendarQueue::pop).
    pub fn peek_time(&mut self) -> Option<Cycles> {
        if self.is_empty() {
            return None;
        }
        Some(self.locate().1)
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        if self.is_empty() {
            return None;
        }
        let (bucket, _) = self.locate();
        let e = self.buckets[bucket]
            .pop_front()
            // simlint: allow(panic-freedom): locate() only caches (bucket, at) pairs it just observed via front(), and the cache is invalidated on every mutation
            .expect("cached bucket is nonempty");
        self.len -= 1;
        self.cursor_bucket = bucket;
        self.cursor_time = e.at.raw();
        // Same-slice retention: if the popped bucket's new front falls in
        // the same width-slice as the popped event, it is provably the
        // global minimum — any earlier event would hash to this bucket and
        // sort ahead of it — so the cache survives the pop. Same-cycle
        // bursts (the batched-drain hot path) then pop at O(1) each.
        self.next_cache = match self.buckets[bucket].front() {
            Some(f) if f.at.raw() >> self.shift == e.at.raw() >> self.shift => {
                Some((bucket, f.at))
            }
            Some(_) => None,
            None => {
                self.nonempty[bucket / 64] &= !(1 << (bucket % 64));
                None
            }
        };
        Some((e.at, e.payload))
    }

    /// Removes the earliest event only if due at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use crate::event::EventQueue;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        for i in 0..50 {
            q.schedule(Cycles::new(7), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((Cycles::new(7), i)));
        }
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(1_000_000_000), 'z');
        q.schedule(Cycles::new(5), 'a');
        assert_eq!(q.pop(), Some((Cycles::new(5), 'a')));
        assert_eq!(q.pop(), Some((Cycles::new(1_000_000_000), 'z')));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = CalendarQueue::new(Cycles::new(100));
        q.schedule(Cycles::new(100), 1);
        assert_eq!(q.pop(), Some((Cycles::new(100), 1)));
        q.schedule(Cycles::new(150), 2);
        q.schedule(Cycles::new(120), 3);
        assert_eq!(q.pop(), Some((Cycles::new(120), 3)));
        q.schedule(Cycles::new(130), 4);
        assert_eq!(q.pop(), Some((Cycles::new(130), 4)));
        assert_eq!(q.pop(), Some((Cycles::new(150), 2)));
    }

    #[test]
    fn resize_preserves_everything() {
        let mut q = CalendarQueue::new(Cycles::new(1));
        // Force several growth steps.
        for i in 0..1000u64 {
            q.schedule(Cycles::new(i * 13 % 997), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = (Cycles::ZERO, 0u64);
        let mut count = 0;
        let mut prev_at = Cycles::ZERO;
        while let Some((t, v)) = q.pop() {
            assert!(
                t >= prev_at,
                "out of order at {count}: {t:?} after {prev_at:?}"
            );
            prev_at = t;
            last = (t, v);
            count += 1;
        }
        assert_eq!(count, 1000);
        let _ = last;
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(50), 'x');
        assert_eq!(q.pop_due(Cycles::new(49)), None);
        assert_eq!(q.pop_due(Cycles::new(50)), Some((Cycles::new(50), 'x')));
    }

    #[test]
    fn peek_is_stable_and_does_not_move_the_cursor() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(900), 'z');
        // Peeking scans far ahead to find 'z', but must not advance the
        // cursor: scheduling an earlier event afterwards stays legal and
        // becomes the new head.
        assert_eq!(q.peek_time(), Some(Cycles::new(900)));
        q.schedule(Cycles::new(40), 'a');
        assert_eq!(q.peek_time(), Some(Cycles::new(40)));
        assert_eq!(q.pop(), Some((Cycles::new(40), 'a')));
        assert_eq!(q.peek_time(), Some(Cycles::new(900)));
        assert_eq!(q.pop(), Some((Cycles::new(900), 'z')));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn min_cache_survives_equal_time_inserts() {
        let mut q = CalendarQueue::new(Cycles::new(10));
        q.schedule(Cycles::new(25), 0);
        assert_eq!(q.peek_time(), Some(Cycles::new(25)));
        // Same-time insert must not displace the cached head (FIFO).
        q.schedule(Cycles::new(25), 1);
        assert_eq!(q.pop(), Some((Cycles::new(25), 0)));
        assert_eq!(q.pop(), Some((Cycles::new(25), 1)));
    }

    #[cfg(feature = "proptest")]
    proptest! {
        /// The calendar queue dequeues in exactly the order of the
        /// reference binary-heap queue, including FIFO tie-breaks.
        #[test]
        fn equivalent_to_heap_queue(
            times in proptest::collection::vec(0u64..100_000, 1..400),
            spacing in 1u64..10_000,
        ) {
            let mut cal = CalendarQueue::new(Cycles::new(spacing));
            let mut heap = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                cal.schedule(Cycles::new(t), i);
                heap.schedule(Cycles::new(t), i);
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Interleaved operation: schedule batches between pops, compare.
        #[test]
        fn equivalent_under_interleaving(
            batches in proptest::collection::vec(
                proptest::collection::vec(0u64..50_000, 0..20), 1..20),
        ) {
            let mut cal = CalendarQueue::new(Cycles::new(100));
            let mut heap = EventQueue::new();
            let mut next_id = 0usize;
            let mut floor = 0u64;
            for batch in batches {
                for t in batch {
                    // Keep times monotone-safe for the calendar's cursor.
                    let at = floor + t;
                    cal.schedule(Cycles::new(at), next_id);
                    heap.schedule(Cycles::new(at), next_id);
                    next_id += 1;
                }
                for _ in 0..3 {
                    let a = cal.pop();
                    let b = heap.pop();
                    prop_assert_eq!(&a, &b);
                    if let Some((t, _)) = a {
                        floor = floor.max(t.raw());
                    }
                }
            }
        }

        /// The engine's real access pattern: a virtual clock advances via
        /// `peek_time` (idle jumps), events are drained with `pop_due(now)`
        /// (possibly in a same-cycle batch), and handlers schedule new
        /// events relative to `now` — never into the past. Both backends
        /// must agree on every intermediate peek and every dequeued event.
        #[test]
        fn equivalent_under_engine_interleaving(
            steps in proptest::collection::vec(
                (0u64..5_000, proptest::collection::vec(0u64..20_000, 0..8)),
                1..60),
            spacing in 1u64..5_000,
        ) {
            let mut cal = CalendarQueue::new(Cycles::new(spacing));
            let mut heap = EventQueue::new();
            let mut next_id = 0usize;
            let mut now = 0u64;
            for (advance, schedules) in steps {
                // Handlers schedule strictly at-or-after `now`, exactly
                // like `EnvState::schedule_at`'s clamp.
                for d in schedules {
                    let at = now + d;
                    cal.schedule(Cycles::new(at), next_id);
                    heap.schedule(Cycles::new(at), next_id);
                    next_id += 1;
                }
                // The executor advances either to a deadline or to the
                // next event time, whichever it likes — peeks must agree.
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                now += advance;
                if let Some(t) = heap.peek_time() {
                    now = now.max(t.raw());
                }
                // Drain everything due, like the engine's batched step 1.
                loop {
                    let a = cal.pop_due(Cycles::new(now));
                    let b = heap.pop_due(Cycles::new(now));
                    prop_assert_eq!(&a, &b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
