#![warn(missing_docs)]

//! Deterministic discrete-event simulation primitives.
//!
//! `livelock-sim` is the foundation of the receive-livelock reproduction: a
//! virtual clock measured in CPU cycles, a stable event queue, a seedable
//! pseudo-random number generator, and the statistics containers used by the
//! experiment harness.
//!
//! Everything in this crate is deterministic: there is no wall-clock access,
//! no global state, and no threads. Two runs with the same seed produce
//! bit-identical results, which the integration tests rely on.
//!
//! # Examples
//!
//! ```
//! use livelock_sim::{Cycles, EventQueue, Freq};
//!
//! let freq = Freq::mhz(100);
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(freq.cycles_from_micros(10), "second");
//! q.schedule(freq.cycles_from_micros(5), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, Cycles::new(500));
//! ```

pub mod calendar;
pub mod event;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use event::EventQueue;
pub use sched::Scheduler;
pub use rng::Rng;
pub use stats::{Counter, HdrHistogram, Histogram, MeanVar, RateWindow, TimeSeries};
pub use time::{Cycles, Freq, Nanos};
