//! A small, fast, seedable pseudo-random number generator.
//!
//! The simulator needs deterministic randomness (packet inter-arrival jitter,
//! Poisson processes, payload fill). We implement xoshiro256** seeded through
//! SplitMix64 — the standard, well-analysed combination — rather than pulling
//! in an external RNG crate, so the simulation core stays dependency-free and
//! its streams are stable across toolchain updates.

/// Deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use livelock_sim::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including zero) is valid; the state is expanded with
    /// SplitMix64 so it is never all-zero.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival times. Returns 0.0 for a zero mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Avoid ln(0): next_f64 is in [0, 1), so use 1 - u in (0, 1].
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Derives an independent child generator (for per-subsystem streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn next_below_in_bounds_and_covers() {
        let mut r = Rng::seed_from(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut r = Rng::seed_from(11);
        for _ in 0..1000 {
            let x = r.range_inclusive(5, 7);
            assert!((5..=7).contains(&x));
        }
        assert_eq!(r.range_inclusive(4, 4), 4);
        // Full u64 range must not overflow.
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::seed_from(13);
        let n = 100_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.02,
            "observed mean {observed}"
        );
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn fill_bytes_exact_and_ragged() {
        let mut r = Rng::seed_from(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf8 = [0u8; 16];
        r.fill_bytes(&mut buf8);
        assert!(buf8.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = Rng::seed_from(21);
        let mut b = Rng::seed_from(21);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seed_from(23);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }
}
