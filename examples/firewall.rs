//! A screening firewall under a packet flood: queue-state feedback in
//! action.
//!
//! Runs the router with a realistic screend rule set (not just accept-all)
//! while a flood of 7,000 pkts/s arrives — beyond what the user-mode
//! screening process can handle. Without queue-state feedback the kernel
//! starves screend and delivers nothing; with feedback it inhibits input
//! at the screening queue's high-water mark and sustains screend's full
//! capacity.
//!
//! ```text
//! cargo run --release --example firewall
//! ```

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_net::filter::Filter;

const RULES: &str = "\
# Block spoofed loopback/bogon sources.
deny ip from 127.0.0.0/8 to any
deny ip from 0.0.0.0/8 to any
# No DNS to the inside except the official resolver.
accept udp from any to 10.1.0.53 port 53
deny udp from any to 10.1.0.0/16 port 53
# Management network: ICMP only.
deny tcp from any to 10.1.255.0/24
deny udp from any to 10.1.255.0/24
# Everything else is allowed through.
accept ip from any to any
";

fn main() {
    let rules = Filter::parse(RULES).expect("rule file parses");
    println!(
        "Screening firewall: {} rules, flood of 7000 pkts/s (screend capacity ~1900 pkts/s)\n",
        rules.rules().len()
    );

    for (name, feedback) in [("WITHOUT feedback", false), ("WITH feedback", true)] {
        let mut cfg = if feedback {
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build()
        } else {
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).build()
        };
        cfg.screend.as_mut().expect("screend configured").rules =
            Filter::parse(RULES).expect("rule file parses");

        let r = run_trial(&TrialSpec {
            rate_pps: 7_000.0,
            n_packets: 5_000,
            ..TrialSpec::new(cfg)
        });
        println!("{name}:");
        println!(
            "  delivered through firewall {:>8.0} pkts/s",
            r.delivered_pps
        );
        println!("  dropped at screening queue {:>8}", r.screend_q_drops);
        println!("  dropped at receive ring    {:>8} (free)", r.rx_ring_drops);
        println!();
    }

    println!(
        "Feedback moves the loss from the screening queue (where the kernel\n\
         has already invested per-packet work) to the receive ring (where\n\
         drops are free), so the firewall keeps forwarding at full capacity."
    );
}
