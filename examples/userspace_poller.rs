//! Driving `livelock-core` standalone — no simulator, no kernel model.
//!
//! This is the shape of a userspace packet framework (netmap / AF_XDP /
//! DPDK style): a device delivers packets into a ring, a downstream worker
//! consumes them from a bounded queue, and the [`PollLoop`] arbitrates with
//! the paper's mechanisms. The "CPU" here is a simple operation budget per
//! round, which is enough to show the two behaviours:
//!
//! - without feedback, a flood starves the consumer and the downstream
//!   queue drops nearly everything;
//! - with watermark feedback, input is throttled at the high-water mark
//!   and the consumer's full capacity survives the flood.
//!
//! ```text
//! cargo run --release --example userspace_poller
//! ```

use std::collections::VecDeque;

use livelock_core::driver::{PollDriver, PollLoop, PollOutcome};
use livelock_core::poller::{PollDirection, Quota};

/// A toy userspace NIC: an rx ring fed by a flood, delivering into a
/// shared bounded queue.
struct ToyNic {
    rx_ring: u32,
    rx_ring_cap: u32,
    rx_ring_drops: u64,
    rx_intr: bool,
    tx_intr: bool,
    /// The bounded downstream (worker) queue.
    downstream: VecDeque<u64>,
    downstream_cap: usize,
    downstream_drops: u64,
    seq: u64,
}

impl ToyNic {
    fn new() -> Self {
        ToyNic {
            rx_ring: 0,
            rx_ring_cap: 32,
            rx_ring_drops: 0,
            rx_intr: true,
            tx_intr: true,
            downstream: VecDeque::new(),
            downstream_cap: 32,
            downstream_drops: 0,
            seq: 0,
        }
    }

    /// The wire delivers `n` frames; returns true if an interrupt should
    /// fire (ring was refilled while interrupts are enabled).
    fn wire_arrival(&mut self, n: u32) -> bool {
        let accepted = n.min(self.rx_ring_cap - self.rx_ring);
        self.rx_ring += accepted;
        // simlint: allow(drop-accounting): ToyNic's own ring counter, not a KernelStats field
        self.rx_ring_drops += u64::from(n - accepted);
        self.rx_intr
    }
}

impl PollDriver for ToyNic {
    fn rx_poll(&mut self, budget: u32) -> PollOutcome {
        let mut processed = 0;
        while processed < budget && self.rx_ring > 0 {
            self.rx_ring -= 1;
            processed += 1;
            self.seq += 1;
            if self.downstream.len() < self.downstream_cap {
                self.downstream.push_back(self.seq);
            } else {
                self.downstream_drops += 1;
            }
        }
        PollOutcome {
            processed,
            more: self.rx_ring > 0,
        }
    }

    fn tx_poll(&mut self, _budget: u32) -> PollOutcome {
        PollOutcome {
            processed: 0,
            more: false,
        }
    }

    fn set_rx_intr(&mut self, enabled: bool) {
        self.rx_intr = enabled;
    }

    fn set_tx_intr(&mut self, enabled: bool) {
        self.tx_intr = enabled;
    }
}

/// One experiment: flood the NIC for `rounds` scheduling rounds with a
/// worker that can consume 2 packets per round; the kernel-side poll loop
/// can move 10 per round. Returns (consumed, downstream drops).
fn run(mut pl: PollLoop<ToyNic>, rounds: u64, with_feedback: bool) -> (u64, u64) {
    let sid = livelock_core::poller::SourceId(0);
    let mut clock_val = 0u64;
    let mut consumed = 0u64;

    for round in 0..rounds {
        // The wire delivers a flood: 10 frames per round.
        if pl.driver_mut(sid).wire_arrival(10) {
            pl.interrupt(sid, PollDirection::Receive);
        }

        // The polling thread gets one callback's worth of CPU per round.
        let mut clock = || {
            clock_val += 50;
            clock_val
        };
        let _ = pl.poll_once(&mut clock);
        if with_feedback {
            let depth = pl.driver(sid).downstream.len();
            pl.downstream_depth(depth);
        }

        // The worker consumes 2 packets per round (its full capacity).
        for _ in 0..2 {
            if pl.driver_mut(sid).downstream.pop_front().is_some() {
                consumed += 1;
                if with_feedback {
                    let depth = pl.driver(sid).downstream.len();
                    pl.downstream_depth(depth);
                }
            }
        }
        // A clock tick spans many scheduling rounds (as 1 ms spans many
        // packet times); the feedback timeout is measured in ticks.
        if round % 50 == 0 {
            pl.tick(round / 50, 10);
        }
    }
    let nic = pl.driver(sid);
    println!(
        "    (receive-ring free drops: {}, worker queue high point: {})",
        nic.rx_ring_drops, nic.downstream_cap
    );
    (consumed, nic.downstream_drops)
}

fn main() {
    println!("Userspace poller under a 5x flood (worker capacity: 2 pkts/round)\n");

    let plain = PollLoop::new(Quota::Limited(10), Quota::Limited(10));
    let (consumed, drops) = run(plain.into_registered(), 10_000, false);
    println!("without feedback: consumed {consumed:>6}, downstream drops {drops:>6}\n");

    let fb = PollLoop::new(Quota::Limited(10), Quota::Limited(10)).with_feedback(32, 0.75, 0.25, 2);
    let (consumed, drops) = run(fb.into_registered(), 10_000, true);
    println!("with feedback:    consumed {consumed:>6}, downstream drops {drops:>6}");

    println!(
        "\nBoth consume at the worker's full rate (~2/round), but feedback\n\
         moves the loss from the downstream queue (wasted work) to the\n\
         receive ring (free): the livelock-core mechanisms working without\n\
         any simulator."
    );
}

/// Small helper so `run` can own the loop with one registered NIC.
trait Registered {
    fn into_registered(self) -> Self;
}

impl Registered for PollLoop<ToyNic> {
    fn into_registered(mut self) -> Self {
        let sid = self.register(ToyNic::new());
        assert_eq!(sid.0, 0);
        self
    }
}
