//! Quickstart: reproduce receive livelock, then eliminate it.
//!
//! Floods a simulated router with minimum-size UDP packets at an overload
//! rate (8,000 pkts/s, well past the ~4,500 pkts/s MLFRR) under the
//! unmodified interrupt-driven kernel and under the paper's modified
//! polling kernel, and prints what each delivered.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};

fn main() {
    let rate = 8_000.0;
    println!("Flooding the router with {rate:.0} pkts/s of minimum-size UDP packets...\n");

    for (name, cfg) in [
        ("unmodified 4.2BSD-style kernel", KernelConfig::builder().build()),
        (
            "modified kernel (polling, quota=10)",
            KernelConfig::builder().polled(Quota::Limited(10)).build(),
        ),
    ] {
        let r = run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: 5_000,
            ..TrialSpec::new(cfg)
        });
        println!("{name}:");
        println!("  offered        {:>8.0} pkts/s", r.offered_pps);
        println!("  delivered      {:>8.0} pkts/s", r.delivered_pps);
        println!(
            "  rx-ring drops  {:>8} (free, at the interface)",
            r.rx_ring_drops
        );
        println!(
            "  wasted drops   {:>8} (after CPU work was invested)",
            r.ipintrq_drops + r.ifq_drops
        );
        println!("  mean latency   {:>8}", r.latency_mean);
        println!("  interrupts     {:>8}\n", r.aggregate().interrupts_taken);
    }

    println!(
        "The unmodified kernel spends its CPU on packets it later drops at\n\
         ipintrq; the modified kernel drops excess load for free at the\n\
         interface and sustains its maximum loss-free receive rate."
    );
}
