//! An end-system UDP/RPC server under request overload (paper §2, §7.1).
//!
//! The paper's third motivating application: "client-server applications,
//! such as NFS, running on fast clients and servers can generate heavy RPC
//! loads" with no flow control. Here the host is not a router but a server:
//! requests addressed to the host itself are delivered through a bounded
//! socket buffer to an application process that replies to each one.
//!
//! Under the unmodified kernel, interrupt-level work starves the server
//! process and goodput collapses; the modified kernel with socket-queue
//! feedback holds the application's full service rate.
//!
//! ```text
//! cargo run --release --example udp_server
//! ```

use std::net::Ipv4Addr;

use livelock_core::poller::Quota;
use livelock_kernel::config::{FeedbackConfig, KernelConfig, LocalDeliveryConfig};
use livelock_kernel::experiment::TrialSpec;
use livelock_net::gen::PacketFactory;

fn main() {
    println!("UDP request rate sweep against an RPC server (replies enabled)\n");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>12}",
        "req/s", "unmodified", "modified+fb", ""
    );

    for rate in [1_000.0, 2_000.0, 3_000.0, 5_000.0, 8_000.0, 12_000.0] {
        let mut row = Vec::new();
        for cfg in [
            KernelConfig::builder()
                .local_delivery(LocalDeliveryConfig::default())
                .ip_forwarding(false)
                .build(),
            KernelConfig::builder()
                .polled(Quota::Limited(10))
                .local_delivery(LocalDeliveryConfig {
                    feedback: Some(FeedbackConfig::default()),
                    ..LocalDeliveryConfig::default()
                })
                .ip_forwarding(false)
                .build(),
        ] {
            let mut spec = TrialSpec {
                rate_pps: rate,
                n_packets: 4_000,
                ..TrialSpec::new(cfg)
            };
            // Address the requests to the host itself, not through it.
            spec.config.num_ifaces = 2;
            let r = run_with_local_dst(&spec);
            row.push(r);
        }
        println!("{:>10.0}  {:>9.0} op/s  {:>9.0} op/s", rate, row[0], row[1]);
    }

    println!(
        "\n'op/s' is application goodput: requests actually consumed (and\n\
         answered) by the server process inside the measurement window."
    );
}

/// Like `run_trial`, but the generated requests target the host's own
/// address (10.0.0.1) so they take the local-delivery path.
fn run_with_local_dst(spec: &TrialSpec) -> f64 {
    use livelock_kernel::router::{Event, RouterKernel};
    use livelock_machine::cpu::Engine;
    use livelock_machine::wire::Wire;
    use livelock_net::gen::TrafficGen;
    use livelock_net::packet::MIN_FRAME_LEN;
    use livelock_sim::Cycles;

    let cfg = spec.config.clone();
    let freq = cfg.cost.freq;
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    let mut engine = Engine::new(st, kernel, ctx_switch);

    let mut gen = TrafficGen::paper_default(spec.rate_pps, freq, spec.seed);
    let mut times = gen.arrival_times(Cycles::ZERO, spec.n_packets);
    Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
    let mut factory = PacketFactory::paper_testbed();
    factory.dst_ip = Ipv4Addr::new(10, 0, 0, 1); // The host itself.
    for &t in &times {
        let pkt = factory.next_packet();
        engine.state_schedule(t, Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
    }

    let first = times[0];
    let last = *times.last().expect("nonempty");
    let span = last - first;
    let start = first + Cycles::new((span.raw() as f64 * spec.warmup_frac) as u64);
    engine.workload_mut().stats_mut().set_window(start, last);
    engine.run_until(last);
    engine.workload().stats().app_delivered_pps(freq)
}
