//! Passive network monitoring — the paper's second motivating application.
//!
//! A monitoring station receives a mirror of LAN traffic in promiscuous
//! mode and hands every frame to a user-mode capture process through a
//! bounded packet-filter queue (here modelled with the screend machinery:
//! the "capture" process consumes matching packets instead of forwarding
//! them). Under a traffic spike the monitor itself must not livelock —
//! §6.6.1 suggests applying the same queue-state feedback to packet filter
//! queues.
//!
//! ```text
//! cargo run --release --example monitor
//! ```

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_net::filter::Filter;

/// The capture filter: the analyst only wants DNS and the UDP test stream;
/// captured packets are consumed by the monitor (deny = do not forward).
const CAPTURE_RULES: &str = "\
deny udp from any to any port 53
deny udp from any to any port 9
accept ip from any to any
";

fn main() {
    println!("Passive monitor under a 9,000 pkts/s traffic spike\n");

    for (name, feedback) in [("WITHOUT feedback", false), ("WITH feedback", true)] {
        let mut cfg = if feedback {
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build()
        } else {
            KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).build()
        };
        cfg.screend
            .as_mut()
            .expect("capture queue configured")
            .rules = Filter::parse(CAPTURE_RULES).expect("capture rules parse");

        let r = run_trial(&TrialSpec {
            rate_pps: 9_000.0,
            n_packets: 6_000,
            ..TrialSpec::new(cfg)
        });

        // The testbed traffic targets UDP port 9, so every packet that
        // reaches the capture process matches a capture (deny) rule.
        let total_spike = 6_000.0;
        println!("{name}:");
        println!(
            "  frames captured            {:>8} ({:.0}% of the spike)",
            screend_captures(&r),
            100.0 * screend_captures(&r) as f64 / total_spike
        );
        println!("  lost at capture queue      {:>8}", r.screend_q_drops);
        println!("  lost at receive ring       {:>8} (free)", r.rx_ring_drops);
        println!();
    }

    println!(
        "Without feedback the monitor's kernel half consumes the CPU and the\n\
         capture process loses most of the spike at the filter queue; with\n\
         feedback the capture process keeps up at its sustainable rate."
    );
}

fn screend_captures(r: &livelock_kernel::experiment::TrialResult) -> u64 {
    // Captured = consumed by the monitor process (screend "denied").
    r.screend_denied
}
