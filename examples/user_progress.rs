//! Guaranteeing progress for user-level processes (paper §7).
//!
//! A compute-bound process shares the router with the network stack while
//! the input rate climbs. Without a cycle limit, packet processing starves
//! the process completely under overload ("the user process made no
//! measurable progress"); with the §7 cycle-limit mechanism the kernel
//! inhibits input handling past a CPU-share threshold each 10 ms period.
//!
//! ```text
//! cargo run --release --example user_progress
//! ```

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};

fn main() {
    let rates = [1_000.0, 3_000.0, 5_000.0, 8_000.0];
    let thresholds = [0.25, 0.50, 0.75, 1.00];

    println!("User-mode CPU share (%) vs input rate, by cycle-limit threshold\n");
    print!("{:>12}", "input_pps");
    for t in thresholds {
        print!("{:>11.0}%", t * 100.0);
    }
    println!("{:>14}", "fwd@100%");

    for rate in rates {
        print!("{rate:>12.0}");
        let mut fwd_at_full = 0.0;
        for t in thresholds {
            let r = run_trial(&TrialSpec {
                rate_pps: rate,
                n_packets: 3_000,
                ..TrialSpec::new(
                    KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit(t).user_process(true).build(),
                )
            });
            print!("{:>11.1}%", r.aggregate().user_cpu_frac * 100.0);
            if t == 1.00 {
                fwd_at_full = r.delivered_pps;
            }
        }
        println!("{fwd_at_full:>13.0}p");
    }

    println!(
        "\nAt threshold 100% (no limit) the user process is starved once the\n\
         input rate saturates the CPU; lower thresholds trade forwarding\n\
         throughput for guaranteed user-level progress."
    );
}
