//! Host-based routing under increasing load: a full input-rate sweep.
//!
//! Reproduces the measurement the paper's throughput figures plot: offered
//! rate on the x-axis, delivered rate on the y-axis, one column per kernel
//! configuration. This is the paper's first motivating application
//! (host-based routing / firewalling on a general-purpose OS).
//!
//! ```text
//! cargo run --release --example router_sweep [-- <config>...]
//! ```
//!
//! Configs: `unmodified`, `screend`, `polled`, `no-quota`, `feedback`
//! (default: `unmodified polled`).

use livelock_core::analysis::{classify, mlfrr};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{paper_rates, sweep, TrialSpec};
use livelock_kernel::par::Parallelism;

fn config_by_name(name: &str) -> Option<KernelConfig> {
    Some(match name {
        "unmodified" => KernelConfig::builder().build(),
        "screend" => KernelConfig::builder().screend(Default::default()).build(),
        "polled" => KernelConfig::builder().polled(Quota::Limited(10)).build(),
        "no-quota" => KernelConfig::builder().polled(Quota::Unlimited).build(),
        "feedback" => KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build(),
        _ => return None,
    })
}

fn main() {
    let mut names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        names = vec!["unmodified".into(), "polled".into()];
    }

    let mut sweeps = Vec::new();
    for name in &names {
        let Some(cfg) = config_by_name(name) else {
            eprintln!("unknown config {name:?}; try unmodified|screend|polled|no-quota|feedback");
            std::process::exit(1);
        };
        eprintln!("sweeping {name}...");
        let base = TrialSpec {
            n_packets: 3_000,
            ..TrialSpec::new(cfg)
        };
        sweeps.push(sweep(name, &base, &paper_rates(), Parallelism::Auto));
    }

    print!("{:>10}", "input_pps");
    for s in &sweeps {
        print!("{:>14}", s.label);
    }
    println!();
    for (i, rate) in paper_rates().iter().enumerate() {
        print!("{rate:>10.0}");
        for s in &sweeps {
            print!("{:>14.0}", s.trials[i].delivered_pps);
        }
        println!();
    }

    println!();
    for s in &sweeps {
        let pts = s.points();
        println!(
            "{:<12} MLFRR ≈ {:>6.0} pkts/s, overload behaviour: {:?}",
            s.label,
            mlfrr(&pts, 0.95).unwrap_or(0.0),
            classify(&pts, 0.10, 0.80),
        );
    }
}
