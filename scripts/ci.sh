#!/usr/bin/env bash
# CI gate: tier-1 verification plus a full quick figure regeneration.
#
# Exit status mirrors the strictest failure seen:
#   0  everything passed
#   1  build/test failure, figures could not write its CSVs, the figure
#      output was not byte-identical across job counts, or bad arguments
#   2  a rendered figure violates the paper's qualitative throughput shape
#   3  the latency gate failed: the polled kernel's p99 forwarding latency
#      is not well below the unmodified kernel's at overload (figure L-1)
#   4  the CPU-share gate failed: figure C-1's conserved cycle ledger does
#      not show the unmodified kernel's rx interrupt share reaching >= 90%
#      with delivery collapsed at wire-saturating load, or shows the
#      cycle-limited polled kernel failing to preserve user+idle share
#   5  the fault gate failed: figure R-1 violates the graceful-degradation
#      claim (the polled kernel stops delivering under the seeded storm,
#      degrades past half its fault-free baseline, or ends the sweep worse
#      than the unmodified kernel)
#   6  the chaos smoke run failed: a seeded fault storm violated a
#      graceful-degradation invariant (see `livelock chaos` exit codes)
#   7  simlint found a non-baselined finding: a determinism,
#      drop-accounting, interrupt-discipline, ledger-discipline,
#      panic-freedom, deprecated-config, smp-isolation, flow-discipline,
#      class-discipline, unit-discipline, exit-code-registry, or
#      stale-baseline violation, or `--fix --dry-run` found pending
#      mechanical fixes (run `cargo run -p lint` for the per-rule exit
#      code; `simlint --exit-codes` prints the full registry; on
#      failure a SARIF report lands in target/simlint.sarif)
#   8  the perf smoke failed: `perf --json` emitted a document that does
#      not match the livelock-perf-trajectory/v1 schema, or its
#      throughput fell more than 2x below what the committed
#      BENCH_PR7.json predicts for a smoke-sized run (smaller shortfalls
#      only warn — wall-clock on a shared box is noisy)
#   9  the SMP gate failed: figure S-1 violates the scaling claim (the
#      polled path's MLFRR must scale >= 1.7x at 2 CPUs and >= 2.5x at 4,
#      the shared-queue path must stay <= 1.2x / <= 1.3x, and every
#      per-CPU cycle ledger must conserve), or figS_1.csv was not
#      byte-identical across job counts
#  10  the online-detection gate failed: figure O-1 violates the
#      detection claim (the unmodified kernel must report livelock onset
#      and starved flows above the MLFRR while the polled kernel with
#      feedback reports no onset), or figO_1.csv was not byte-identical
#      across job counts, or the JSONL event stream / folded flamegraph
#      from `livelock trial` was not byte-identical across runs
#  11  the observe smoke failed: `livelock observe` did not exit 0 on the
#      default overload (its own exit codes 3-6 name the violated
#      invariant), or its bad-argument path did not exit 2, or
#      `perf --observe` measured the observability layer perturbing the
#      trial or costing more than its wall-clock budget
#  12  the priority gate failed: figure P-1 violates the
#      priority-isolation claim (classified Control must meet its SLO and
#      never be shed across the sweep, with Bulk absorbing the shedding,
#      while the single-class kernel collapses), or figP_1.csv was not
#      byte-identical across job counts
#
# Usage: scripts/ci.sh [--jobs N] [other flags...]
#   --jobs N is validated here; any other flag is passed through to the
#   figures binary unchanged.

set -u
cd "$(dirname "$0")/.."

usage() {
    echo "usage: scripts/ci.sh [--jobs N] [flags passed through to figures]" >&2
    exit 1
}

jobs=""
fig_args=()
while [ $# -gt 0 ]; do
    case "$1" in
    --jobs)
        [ $# -ge 2 ] || { echo "ci: --jobs needs a thread count" >&2; usage; }
        case "$2" in
        '' | *[!0-9]* | 0) echo "ci: --jobs: bad thread count '$2'" >&2; usage ;;
        *) jobs=$2 ;;
        esac
        shift 2
        ;;
    --jobs=*)
        jobs=${1#--jobs=}
        case "$jobs" in
        '' | *[!0-9]* | 0) echo "ci: --jobs: bad thread count '$jobs'" >&2; usage ;;
        esac
        shift
        ;;
    -h | --help)
        usage
        ;;
    *)
        # Unknown flags are the figures binary's business, not ours.
        fig_args+=("$1")
        shift
        ;;
    esac
done
jobs_args=()
[ -n "$jobs" ] && jobs_args=(--jobs "$jobs")

echo "== tier 1: cargo build --release =="
cargo build --release || exit 1

echo "== tier 1: cargo test -q =="
cargo test -q || exit 1

repo=$(pwd)
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

echo "== simlint: determinism / drop-accounting / interrupt-discipline =="
# The workspace's own static-analysis pass (crates/lint). It enforces the
# conventions the compiler cannot see: no wall-clock time or hash-ordered
# maps in deterministic crates, record_drop as the only drop-counter
# mutation path, interrupt handlers that only initiate polling, ledger
# charges only at executor commit points, panic-free library code, no
# new callers of the deprecated KernelConfig constructors or TrialResult
# scalar accessors, cross-CPU state confined to the IPI/steal channel
# files, per-flow metrics mutated only through the KernelStats
# attribution hooks, traffic classes stamped/shed only by the
# admission gate, no mixed time bases in unit-suffixed arithmetic, and
# every process exit code registered in crates/lint/src/registry.rs.
# Inline
# `// simlint: allow(rule): reason` and crates/lint/baseline.txt cover the
# sanctioned exceptions; anything fresh gates hard here.
if "$repo/target/release/simlint" --root "$repo"; then
    echo "ci: simlint clean"
else
    rc=$?
    echo "ci: FAIL — simlint exited $rc; JSON report follows" >&2
    "$repo/target/release/simlint" --root "$repo" --json >&2 || true
    mkdir -p "$repo/target"
    "$repo/target/release/simlint" --root "$repo" --format sarif \
        > "$repo/target/simlint.sarif" || true
    echo "ci: SARIF report written to target/simlint.sarif" >&2
    exit 7
fi

echo "== simlint --fix --dry-run: no pending mechanical fixes =="
# The autofixer (deprecated-config builder rewrite, suppression
# normalization) must be a no-op on a clean tree: fixable debt is
# applied, not accumulated. A pending fix prints its diff and gates.
if "$repo/target/release/simlint" --root "$repo" --fix --dry-run; then
    echo "ci: no pending autofixes"
else
    echo "ci: FAIL — pending mechanical fixes; apply with simlint --fix" >&2
    exit 7
fi

echo "== clippy (advisory) =="
# Advisory only: clippy versions drift and this container may not ship
# it; a finding here never gates, it just surfaces in the log.
if cargo clippy --version > /dev/null 2>&1; then
    if cargo clippy --workspace --all-targets -- -D warnings; then
        echo "ci: clippy clean"
    else
        echo "ci: WARN — clippy reported findings (advisory, not gating)" >&2
    fi
else
    echo "ci: clippy not installed; skipping advisory pass"
fi

echo "== figures --quick: regenerate all figures, check shapes =="
# Run from a scratch directory: the quick-mode CSVs are a smoke check and
# must not overwrite the committed full-fidelity results/.
(cd "$scratch" && "$repo/target/release/figures" --quick "${jobs_args[@]}" \
    ${fig_args[0]+"${fig_args[@]}"})
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: FAIL — rendered figures violate the paper's shapes" >&2
    exit 2
elif [ "$rc" -eq 3 ]; then
    echo "ci: FAIL — latency gate: polled p99 not well below unmodified at overload" >&2
    exit 3
elif [ "$rc" -eq 4 ]; then
    echo "ci: FAIL — CPU-share gate: figure C-1 violates the paper's cycle accounting" >&2
    exit 4
elif [ "$rc" -eq 5 ]; then
    echo "ci: FAIL — fault gate: figure R-1 violates graceful degradation" >&2
    exit 5
elif [ "$rc" -eq 6 ]; then
    echo "ci: FAIL — SMP gate: figure S-1 violates the scaling claim" >&2
    exit 9
elif [ "$rc" -eq 7 ]; then
    echo "ci: FAIL — online-detection gate: figure O-1 violates the detection claim" >&2
    exit 10
elif [ "$rc" -eq 8 ]; then
    echo "ci: FAIL — priority gate: figure P-1 violates the priority-isolation claim" >&2
    exit 12
elif [ "$rc" -ne 0 ]; then
    echo "ci: FAIL — figures exited $rc" >&2
    exit 1
fi

echo "== determinism: figure C-1 byte-identical across job counts =="
# Every trial is independently seeded, so the CSV must not depend on how
# trials were fanned out. Render the ledger figure serially and in
# parallel and compare bytes.
mkdir -p "$scratch/j1" "$scratch/jN"
(cd "$scratch/j1" && "$repo/target/release/figures" --quick --fig C-1 --jobs 1) || exit 1
(cd "$scratch/jN" && "$repo/target/release/figures" --quick --fig C-1 --jobs 4) || exit 1
if cmp -s "$scratch/j1/results/figC_1.csv" "$scratch/jN/results/figC_1.csv"; then
    echo "ci: figC_1.csv byte-identical at --jobs 1 and --jobs 4"
else
    echo "ci: FAIL — figC_1.csv differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi

echo "== determinism: figure R-1 byte-identical across job counts =="
# Same determinism contract for the fault figure: its intensity-0 column
# runs with no fault plan at all (the zero-fault baseline), and the seeded
# storms must land identically no matter how trials are fanned out.
(cd "$scratch/j1" && "$repo/target/release/figures" --quick --fig R-1 --jobs 1) || exit 1
(cd "$scratch/jN" && "$repo/target/release/figures" --quick --fig R-1 --jobs 4) || exit 1
if cmp -s "$scratch/j1/results/figR_1.csv" "$scratch/jN/results/figR_1.csv"; then
    echo "ci: figR_1.csv byte-identical at --jobs 1 and --jobs 4"
else
    echo "ci: FAIL — figR_1.csv differs between --jobs 1 and --jobs 4" >&2
    exit 1
fi

echo "== determinism: figure S-1 byte-identical across job counts =="
# The SMP figure's trials interleave up to four per-CPU engines through
# the cluster's round-robin slices; the determinism contract extends to
# that interleaving, so the rendered CSV must not depend on host job
# count any more than the single-engine figures do.
(cd "$scratch/j1" && "$repo/target/release/figures" --quick --fig S-1 --jobs 1) || exit 1
(cd "$scratch/jN" && "$repo/target/release/figures" --quick --fig S-1 --jobs 4) || exit 1
if cmp -s "$scratch/j1/results/figS_1.csv" "$scratch/jN/results/figS_1.csv"; then
    echo "ci: figS_1.csv byte-identical at --jobs 1 and --jobs 4"
else
    echo "ci: FAIL — figS_1.csv differs between --jobs 1 and --jobs 4" >&2
    exit 9
fi

echo "== determinism: figure O-1 byte-identical across job counts =="
# The online-detection figure runs with the full observability layer on
# (per-flow registry, livelock detector, cycle fold); the determinism
# contract extends to everything the layer measures, so its CSV must not
# depend on host job count either.
(cd "$scratch/j1" && "$repo/target/release/figures" --quick --fig O-1 --jobs 1) || exit 1
(cd "$scratch/jN" && "$repo/target/release/figures" --quick --fig O-1 --jobs 4) || exit 1
if cmp -s "$scratch/j1/results/figO_1.csv" "$scratch/jN/results/figO_1.csv"; then
    echo "ci: figO_1.csv byte-identical at --jobs 1 and --jobs 4"
else
    echo "ci: FAIL — figO_1.csv differs between --jobs 1 and --jobs 4" >&2
    exit 10
fi

echo "== determinism: figure P-1 byte-identical across job counts =="
# The priority figure threads the class dimension through the whole
# stack (classifier, per-class rings, shed controller, per-class
# latency ledgers); its CSV must not depend on host job count either.
(cd "$scratch/j1" && "$repo/target/release/figures" --quick --fig P-1 --jobs 1) || exit 1
(cd "$scratch/jN" && "$repo/target/release/figures" --quick --fig P-1 --jobs 4) || exit 1
if cmp -s "$scratch/j1/results/figP_1.csv" "$scratch/jN/results/figP_1.csv"; then
    echo "ci: figP_1.csv byte-identical at --jobs 1 and --jobs 4"
else
    echo "ci: FAIL — figP_1.csv differs between --jobs 1 and --jobs 4" >&2
    exit 12
fi

echo "== determinism: event stream and flamegraph byte-identical across runs =="
# The observability artifacts themselves are part of the determinism
# contract: the JSONL event stream and the folded flamegraph from two
# fresh processes of the same trial must match byte for byte.
mkdir -p "$scratch/obs1" "$scratch/obs2"
for d in obs1 obs2; do
    "$repo/target/release/livelock" trial --config screend --rate 12000 \
        --packets 2000 --seed 7 \
        --events "$scratch/$d/events.jsonl" \
        --flamegraph "$scratch/$d/trial.folded" > /dev/null || {
        echo "ci: FAIL — livelock trial --events/--flamegraph exited nonzero" >&2
        exit 10
    }
done
if cmp -s "$scratch/obs1/events.jsonl" "$scratch/obs2/events.jsonl" \
    && cmp -s "$scratch/obs1/trial.folded" "$scratch/obs2/trial.folded"; then
    echo "ci: events.jsonl and trial.folded byte-identical across runs"
else
    echo "ci: FAIL — observability artifacts differ between identical runs" >&2
    exit 10
fi
if [ -s "$scratch/obs1/events.jsonl" ] && [ -s "$scratch/obs1/trial.folded" ]; then
    echo "ci: observability artifacts are non-empty"
else
    echo "ci: FAIL — an observability artifact is empty" >&2
    exit 10
fi

echo "== committed results: full-fidelity figures byte-identical =="
# The committed results/*.csv are the paper artifact; the calendar-backed
# batched engine must reproduce every byte. Regenerate the full-fidelity
# set in scratch and compare file by file.
mkdir -p "$scratch/full"
(cd "$scratch/full" && "$repo/target/release/figures") || exit 1
results_ok=1
for f in "$repo"/results/*.csv; do
    base=$(basename "$f")
    if cmp -s "$f" "$scratch/full/results/$base"; then
        :
    else
        echo "ci: FAIL — committed results/$base differs from a fresh full-fidelity render" >&2
        results_ok=0
    fi
done
[ "$results_ok" -eq 1 ] || exit 1
echo "ci: all committed results/*.csv byte-identical to a fresh render"

echo "== perf --json smoke: schema + soft regression gate =="
# A smoke-sized perf-trajectory run (200 packets/trial vs the committed
# artifact's 10000): validate the livelock-perf-trajectory/v1 schema
# (including its documented stable field order) and soft-gate throughput
# against the committed BENCH_PR7.json. Smoke runs amortize setup worse,
# so the expected smoke throughput is about half the committed
# events/sec; dipping below that prints a warning, and only a >2x
# regression below it (i.e. under a quarter of the committed rate) exits
# nonzero.
"$repo/target/release/perf" --packets 200 --json > "$scratch/perf.json" || {
    echo "ci: FAIL — perf --json exited nonzero" >&2
    exit 8
}
if python3 - "$scratch/perf.json" "$repo/BENCH_PR7.json" <<'PYEOF'
import json, sys

def ordered(path):
    with open(path) as f:
        return json.load(f, object_pairs_hook=lambda ps: ps)

def keys(pairs):
    return [k for k, _ in pairs]

def get(pairs, key):
    return dict(pairs)[key]

smoke = ordered(sys.argv[1])
committed = ordered(sys.argv[2])

TOP = ["schema", "packets_per_trial", "jobs", "engines",
       "calendar_speedup_vs_heap", "seed_baseline_wall_s",
       "seed_baseline_packets_per_trial", "seed_baseline_note",
       "speedup_vs_seed"]
ENGINE = ["engine", "figures", "total_wall_s", "total_events",
          "events_per_sec"]
FIGURE = ["id", "wall_s", "events_dispatched", "events_per_sec"]

def check_doc(doc, name):
    if keys(doc) != TOP:
        sys.exit(f"{name}: top-level keys {keys(doc)} != {TOP}")
    if get(doc, "schema") != "livelock-perf-trajectory/v1":
        sys.exit(f"{name}: unexpected schema {get(doc, 'schema')!r}")
    engines = get(doc, "engines")
    if [get(e, "engine") for e in engines] != ["heap", "calendar"]:
        sys.exit(f"{name}: engines must be [heap, calendar]")
    for e in engines:
        if keys(e) != ENGINE:
            sys.exit(f"{name}: engine keys {keys(e)} != {ENGINE}")
        figures = get(e, "figures")
        if not figures:
            sys.exit(f"{name}: empty figure list")
        for fig in figures:
            if keys(fig) != FIGURE:
                sys.exit(f"{name}: figure keys {keys(fig)} != {FIGURE}")
            if get(fig, "events_dispatched") <= 0:
                sys.exit(f"{name}: figure {get(fig, 'id')} dispatched no events")
    return engines

smoke_engines = check_doc(smoke, "smoke")
committed_engines = check_doc(committed, "BENCH_PR7.json")
print("ci: perf --json matches livelock-perf-trajectory/v1 (stable field order)")

smoke_eps = get(smoke_engines[1], "events_per_sec")
committed_eps = get(committed_engines[1], "events_per_sec")
ratio = smoke_eps / committed_eps
print(f"ci: smoke calendar throughput {smoke_eps:,.0f} ev/s "
      f"({ratio:.2f}x of committed {committed_eps:,.0f} ev/s; "
      f"smoke-sized runs expect ~0.5x)")
if ratio < 0.25:
    sys.exit(f"smoke throughput is a >2x regression below the expected "
             f"smoke-scale rate ({ratio:.2f}x of committed, floor 0.25x)")
if ratio < 0.5:
    print(f"ci: WARN — smoke throughput below the expected smoke-scale "
          f"rate ({ratio:.2f}x of committed); not gating, but worth a look",
          file=sys.stderr)
PYEOF
then
    echo "ci: perf smoke OK"
else
    echo "ci: FAIL — perf smoke schema or >2x throughput regression (see above)" >&2
    exit 8
fi

echo "== perf --observe: zero-perturbation + overhead budget =="
# Paired off/on trials: the binary asserts the observed run's measured
# fields are bit-identical to the unobserved run's, and that the layer's
# wall-clock cost stays inside its budget.
if "$repo/target/release/perf" --observe --packets 200; then
    echo "ci: observability layer unperturbing and within budget"
else
    echo "ci: FAIL — perf --observe found perturbation or a budget overrun" >&2
    exit 11
fi

echo "== observe smoke: online detection exit codes =="
# The observe subcommand's contract is its exit code: 0 when the
# unmodified kernel livelocks above the MLFRR, the polled kernel does
# not, the starvation watch separates them, and every per-flow ledger
# closes exactly; 3-6 name the violated invariant; 2 is bad arguments.
if "$repo/target/release/livelock" observe; then
    echo "ci: observe invariants hold at the default overload"
else
    rc=$?
    echo "ci: FAIL — livelock observe exited $rc (see invariant list above)" >&2
    exit 11
fi
"$repo/target/release/livelock" observe --rate -5 > /dev/null 2>&1
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: observe rejects bad arguments with exit 2"
else
    echo "ci: FAIL — livelock observe --rate -5 exited $rc, want 2" >&2
    exit 11
fi

echo "== chaos smoke: seeded fault storm, graceful-degradation invariants =="
# A fixed-seed storm against both kernels: the polled kernel must keep
# delivering, un-wedge every injected stall, and conserve the ledger,
# while the unmodified kernel livelocks under the identical plan. The
# binary asserts all of that and reports each violation with its own
# exit code.
if "$repo/target/release/livelock" chaos --seed 49157; then
    echo "ci: chaos invariants hold under seed 49157"
else
    rc=$?
    echo "ci: FAIL — chaos smoke run exited $rc (see invariant list above)" >&2
    exit 6
fi

echo "== chaos --priority smoke: inversion storm, per-invariant exit codes =="
# The priority storm variant: under the same seeded fault storm the
# classified polled kernel must produce no priority-inversion event
# (exit 9 if it does) while the single-class unmodified kernel must
# produce at least one (exit 10 if it does not), on top of every
# graceful-degradation invariant the plain smoke checks.
if "$repo/target/release/livelock" chaos --priority --seed 49157; then
    echo "ci: priority-inversion invariants hold under seed 49157"
else
    rc=$?
    echo "ci: FAIL — chaos --priority run exited $rc (see invariant list above)" >&2
    exit 6
fi
# The variant's bad-argument path stays exit 2 like every subcommand's.
"$repo/target/release/livelock" chaos --priority --rate -5 > /dev/null 2>&1
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: chaos --priority rejects bad arguments with exit 2"
else
    echo "ci: FAIL — livelock chaos --priority --rate -5 exited $rc, want 2" >&2
    exit 6
fi

echo "ci: OK"
