#!/usr/bin/env bash
# CI gate: tier-1 verification plus a full quick figure regeneration.
#
# Exit status mirrors the strictest failure seen:
#   0  everything passed
#   1  build/test failure, or figures could not write its CSVs
#   2  a rendered figure violates the paper's qualitative shape
#
# Usage: scripts/ci.sh [--jobs N]    (N forwarded to the figures binary)

set -u
cd "$(dirname "$0")/.."

jobs_args=()
if [ "${1:-}" = "--jobs" ] && [ -n "${2:-}" ]; then
    jobs_args=(--jobs "$2")
fi

echo "== tier 1: cargo build --release =="
cargo build --release || exit 1

echo "== tier 1: cargo test -q =="
cargo test -q || exit 1

echo "== figures --quick: regenerate all figures, check shapes =="
# Run from a scratch directory: the quick-mode CSVs are a smoke check and
# must not overwrite the committed full-fidelity results/.
repo=$(pwd)
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
(cd "$scratch" && "$repo/target/release/figures" --quick "${jobs_args[@]}")
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: FAIL — rendered figures violate the paper's shapes" >&2
    exit 2
elif [ "$rc" -ne 0 ]; then
    echo "ci: FAIL — figures exited $rc" >&2
    exit 1
fi

echo "ci: OK"
