#!/usr/bin/env bash
# CI gate: tier-1 verification plus a full quick figure regeneration.
#
# Exit status mirrors the strictest failure seen:
#   0  everything passed
#   1  build/test failure, or figures could not write its CSVs
#   2  a rendered figure violates the paper's qualitative throughput shape
#   3  the latency gate failed: the polled kernel's p99 forwarding latency
#      is not well below the unmodified kernel's at overload (figure L-1)
#
# An advisory (non-failing) pass also rebuilds the workspace with
# deprecation warnings promoted to errors, so stragglers still calling the
# deprecated KernelConfig constructors instead of the builder get reported.
#
# Usage: scripts/ci.sh [--jobs N]    (N forwarded to the figures binary)

set -u
cd "$(dirname "$0")/.."

jobs_args=()
if [ "${1:-}" = "--jobs" ] && [ -n "${2:-}" ]; then
    jobs_args=(--jobs "$2")
fi

echo "== tier 1: cargo build --release =="
cargo build --release || exit 1

echo "== tier 1: cargo test -q =="
cargo test -q || exit 1

echo "== figures --quick: regenerate all figures, check shapes =="
# Run from a scratch directory: the quick-mode CSVs are a smoke check and
# must not overwrite the committed full-fidelity results/.
repo=$(pwd)
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
(cd "$scratch" && "$repo/target/release/figures" --quick "${jobs_args[@]}")
rc=$?
if [ "$rc" -eq 2 ]; then
    echo "ci: FAIL — rendered figures violate the paper's shapes" >&2
    exit 2
elif [ "$rc" -eq 3 ]; then
    echo "ci: FAIL — latency gate: polled p99 not well below unmodified at overload" >&2
    exit 3
elif [ "$rc" -ne 0 ]; then
    echo "ci: FAIL — figures exited $rc" >&2
    exit 1
fi

echo "== builder migration: deprecated constructor check (advisory) =="
# A separate target dir so the stricter flags don't invalidate the main
# build cache. Soft-fail: report, never gate.
if RUSTFLAGS="-D deprecated" CARGO_TARGET_DIR="$scratch/deprecated-check" \
    cargo check -q --all-targets 2>"$scratch/deprecated.log"; then
    echo "ci: no deprecated KernelConfig constructor calls"
else
    echo "ci: WARN — deprecated constructor calls remain (advisory only):" >&2
    grep -m 10 -B 1 "use of deprecated" "$scratch/deprecated.log" >&2 ||
        tail -n 20 "$scratch/deprecated.log" >&2
fi

echo "ci: OK"
