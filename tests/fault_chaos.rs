//! Graceful-degradation verification under deterministic fault
//! injection: seeded fault storms must never leave the polled kernel
//! livelocked or wedged, every injected wedge must un-stick itself
//! within its timeout bound, and an empty fault plan must perturb
//! nothing at all.

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_chaos_trial, run_trial, run_trial_traced, TrialSpec};
use livelock_machine::fault::{FaultKind, FaultPlan};

fn polled_screend(faults: Option<FaultPlan>) -> KernelConfig {
    let mut b = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default());
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    b.build()
}

fn unmodified_screend(faults: Option<FaultPlan>) -> KernelConfig {
    let mut b = KernelConfig::builder().screend(Default::default());
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    b.build()
}

fn spec(rate: f64, n: usize, config: KernelConfig) -> TrialSpec {
    TrialSpec {
        rate_pps: rate,
        n_packets: n,
        ..TrialSpec::new(config)
    }
}

/// The default storm used across these tests: intensity 1 over the
/// middle of a 2000-packet trial at 4000 pkts/s (~0.5 simulated
/// seconds).
fn storm(config: &KernelConfig, intensity: f64) -> FaultPlan {
    let freq = config.cost.freq;
    FaultPlan::storm(
        0xC4A05,
        intensity,
        freq.cycles_from_millis(50),
        freq.cycles_from_millis(450),
    )
}

#[test]
fn an_empty_fault_plan_changes_nothing() {
    let plain = run_trial(&spec(3_000.0, 800, polled_screend(None)));
    let gated = run_trial(&spec(3_000.0, 800, polled_screend(Some(FaultPlan::new()))));
    assert_eq!(plain, gated, "empty plan must be bit-identical to none");
    assert_eq!(gated.fault.injected, 0);
}

#[test]
fn chaos_storms_are_deterministic() {
    let cfg = polled_screend(None);
    let plan = storm(&cfg, 1.0);
    let s = spec(4_000.0, 2_000, polled_screend(Some(plan)));
    let a = run_chaos_trial(&s);
    let b = run_chaos_trial(&s);
    assert_eq!(a.result, b.result);
    assert_eq!(a.result.fault, b.result.fault);
    assert_eq!(a.gate_bits, b.gate_bits);
}

#[test]
fn polled_kernel_degrades_gracefully_under_a_fault_storm() {
    let cfg = polled_screend(None);
    let plan = storm(&cfg, 2.0);
    let n_faults = plan.len() as u64;
    let r = run_chaos_trial(&spec(4_000.0, 2_000, polled_screend(Some(plan))));

    assert_eq!(r.result.fault.injected, n_faults, "every fault fired");
    assert!(
        r.result.delivered_pps > 0.0,
        "no livelock under faults: {:?}",
        r.result.fault
    );
    // The graceful-degradation invariants: nothing stays wedged.
    assert!(r.gate_open_at_end, "gate stuck: bits {:#04x}", r.gate_bits);
    assert_eq!(r.screend_q_len, 0, "screend queue drained after crashes");
    assert_eq!(r.in_flight, 0, "no packet stranded inside the kernel");
}

#[test]
fn unmodified_kernel_still_livelocks_under_the_same_storm() {
    let cfg = unmodified_screend(None);
    let plan = storm(&cfg, 1.0);
    let polled = run_chaos_trial(&spec(12_000.0, 4_000, polled_screend(Some(plan.clone()))));
    let unmod = run_chaos_trial(&spec(12_000.0, 4_000, unmodified_screend(Some(plan))));
    assert!(
        unmod.result.delivered_pps < 0.05 * polled.result.delivered_pps.max(1.0),
        "unmodified should livelock where polled survives: {} vs {}",
        unmod.result.delivered_pps,
        polled.result.delivered_pps
    );
    assert!(polled.result.delivered_pps > 1_000.0);
}

#[test]
fn screend_crash_exercises_the_feedback_timeout_and_drains() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    // Crash mid-trial with a long restart backoff: the queue flushes,
    // the high-water inhibit has no consumer to drain it, and only the
    // feedback's tick-timeout safety net can reopen the gate.
    plan.push(
        freq.cycles_from_millis(100),
        FaultKind::ScreendCrash { restart_ticks: 8 },
    );
    plan.push(
        freq.cycles_from_millis(250),
        FaultKind::ScreendStall { ticks: 5 },
    );
    let r = run_chaos_trial(&spec(6_000.0, 2_000, polled_screend(Some(plan))));
    assert_eq!(r.result.fault.screend_crashes, 1);
    assert_eq!(r.result.fault.screend_stalls, 1);
    assert_eq!(r.result.fault.stall_recoveries, 2, "both backoffs expired");
    assert!(
        r.timeout_resumes > 0,
        "the crash must force the timeout safety net: {:?}",
        r.result.fault
    );
    assert!(r.gate_open_at_end, "gate stuck: bits {:#04x}", r.gate_bits);
    assert_eq!(r.screend_q_len, 0, "queue drained after restart");
    assert_eq!(r.in_flight, 0);
    assert!(r.result.delivered_pps > 0.0);
}

#[test]
fn lost_interrupts_are_repaired_by_the_driver_watchdog() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    // Lose the receive interrupt for a lone packet: with no follow-up
    // traffic to repost it, only the per-tick driver watchdog can
    // rescue the frame latched in the ring.
    plan.push(freq.cycles_from_millis(99), FaultKind::LostRxIntr { iface: 0 });
    plan.push(freq.cycles_from_millis(99), FaultKind::LostTxIntr { iface: 1 });
    // 10 packets, 100 ms apart: every arrival is isolated.
    let r = run_chaos_trial(&spec(10.0, 10, polled_screend(Some(plan))));
    assert_eq!(r.result.fault.lost_intrs, 2, "{:?}", r.result.fault);
    assert!(r.result.fault.intr_reposts > 0, "{:?}", r.result.fault);
    assert_eq!(r.result.transmitted, 10, "every packet still delivered");
    assert_eq!(r.in_flight, 0);
    assert!(r.gate_open_at_end);
}

#[test]
fn corrupted_frames_are_caught_and_counted() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    for (k, kind) in [
        FaultKind::PacketBitFlip { iface: 0 },
        FaultKind::PacketTruncate { iface: 0 },
        FaultKind::PacketMalformHeader { iface: 0 },
        FaultKind::RxDescriptorCorrupt { iface: 0 },
    ]
    .into_iter()
    .enumerate()
    {
        plan.push(freq.cycles_from_millis(100 + 50 * k as u64), kind);
    }
    let r = run_chaos_trial(&spec(1_000.0, 1_500, polled_screend(Some(plan))));
    assert_eq!(r.result.fault.mutated_frames, 4, "{:?}", r.result.fault);
    // Every mutation is caught by header validation and becomes an
    // attributed drop; nothing corrupt is forwarded or stranded.
    assert_eq!(r.result.transmitted + 4, 1_500);
    assert_eq!(r.in_flight, 0);
}

#[test]
fn spurious_interrupts_and_clock_jitter_are_harmless() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    plan.push(freq.cycles_from_millis(80), FaultKind::SpuriousRxIntr { iface: 0 });
    plan.push(freq.cycles_from_millis(90), FaultKind::SpuriousTxIntr { iface: 1 });
    plan.push(
        freq.cycles_from_millis(110),
        FaultKind::ClockJitter { skew_cycles: 40_000 },
    );
    plan.push(
        freq.cycles_from_millis(130),
        FaultKind::ClockJitter { skew_cycles: -40_000 },
    );
    let r = run_chaos_trial(&spec(1_000.0, 1_200, polled_screend(Some(plan))));
    assert_eq!(r.result.fault.spurious_intrs, 2);
    assert_eq!(r.result.fault.clock_jitters, 2);
    assert_eq!(r.result.transmitted, 1_200, "no packet harmed");
    assert_eq!(r.in_flight, 0);
}

#[test]
fn link_flap_loses_frames_on_the_wire_not_in_the_ledger() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    plan.push(
        freq.cycles_from_millis(100),
        FaultKind::LinkFlap {
            iface: 0,
            down_cycles: freq.cycles_from_millis(50).raw(),
        },
    );
    let r = run_chaos_trial(&spec(1_000.0, 1_500, polled_screend(Some(plan))));
    assert!(r.result.fault.link_down_losses > 0, "{:?}", r.result.fault);
    // Wire losses happen before the NIC: arrivals + losses = offered.
    assert_eq!(
        r.result.transmitted + r.result.fault.link_down_losses,
        1_500,
        "{:?}",
        r.result.fault
    );
    assert_eq!(r.in_flight, 0);
}

#[test]
fn fault_markers_land_in_the_chrome_trace() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    plan.push(freq.cycles_from_millis(100), FaultKind::ScreendStall { ticks: 2 });
    plan.push(freq.cycles_from_millis(200), FaultKind::SpuriousRxIntr { iface: 0 });
    let s = spec(1_000.0, 600, polled_screend(Some(plan)));
    let (_, json) = run_trial_traced(&s, 1 << 16);
    // Each injection and each recovery is an instant marker on the
    // marker track of the exported trace.
    assert!(json.contains("fault: screend-stall"), "{}", &json[..200]);
    assert!(json.contains("fault: spurious-rx-intr"));
    assert!(json.contains("recover: screend-restart"));

    // And a fault-free traced run carries no markers at all: the export
    // is byte-identical to one from a build without the fault layer.
    let (_, clean) = run_trial_traced(&spec(1_000.0, 600, polled_screend(None)), 1 << 16);
    assert!(!clean.contains("fault:"));
    assert!(!clean.contains("recover:"));
}

#[test]
fn overrun_storm_frames_balance_the_conservation_ledger() {
    let cfg = polled_screend(None);
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    plan.push(
        freq.cycles_from_millis(100),
        FaultKind::RxOverrunStorm { iface: 0, frames: 40 },
    );
    let r = run_chaos_trial(&spec(1_000.0, 1_000, polled_screend(Some(plan))));
    assert_eq!(r.result.fault.storm_frames, 40);
    // in_flight() internally asserts arrivals = deliveries + drops;
    // reaching zero means the garbage frames were all accounted.
    assert_eq!(r.in_flight, 0);
    assert_eq!(r.result.transmitted, 1_000, "real traffic unharmed");
}
