//! End-system (local delivery) integration tests: the paper's NFS/RPC
//! motivating application, built on the same mechanisms.

use std::net::Ipv4Addr;

use livelock_core::poller::Quota;
use livelock_kernel::config::{FeedbackConfig, KernelConfig, LocalDeliveryConfig};
use livelock_kernel::router::{Event, RouterKernel};
use livelock_kernel::stats::KernelStats;
use livelock_machine::cpu::Engine;
use livelock_machine::wire::Wire;
use livelock_net::gen::{PacketFactory, TrafficGen};
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_sim::{Cycles, Freq};

const FREQ: Freq = Freq::mhz(100);

/// Runs an end-system trial: `n` requests at `rate` addressed to the host
/// itself; returns the final stats and the app goodput in the window.
fn serve(cfg: KernelConfig, rate: f64, n: usize) -> (KernelStats, f64) {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    let mut e = Engine::new(st, kernel, ctx_switch);

    let mut gen = TrafficGen::paper_default(rate, FREQ, 1);
    let mut times = gen.arrival_times(Cycles::ZERO, n);
    Wire::ethernet_10m(FREQ).pace(&mut times, MIN_FRAME_LEN);
    let mut factory = PacketFactory::paper_testbed();
    factory.dst_ip = Ipv4Addr::new(10, 0, 0, 1);
    for &t in &times {
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    let first = times[0];
    let last = *times.last().expect("nonempty");
    let start = first + Cycles::new((last - first).raw() / 10);
    e.workload_mut().stats_mut().set_window(start, last);
    e.run_until(last + FREQ.cycles_from_millis(100));
    let goodput = e.workload().stats().app_delivered_pps(FREQ);
    (e.workload().stats().clone(), goodput)
}

/// Light load: every request is delivered and answered, on both kernels.
#[test]
fn light_load_serves_and_replies() {
    for cfg in [
        KernelConfig::builder().local_delivery(Default::default()).ip_forwarding(false).build(),
        KernelConfig::builder().polled(Quota::Limited(10)).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() }).ip_forwarding(false).build(),
    ] {
        let (s, goodput) = serve(cfg, 800.0, 800);
        assert_eq!(s.app_delivered, 800, "stats: {s:?}");
        assert_eq!(s.replies_created, 800);
        // Replies go back out the input interface's wire.
        assert_eq!(s.transmitted, 800);
        assert!(goodput > 700.0, "goodput {goodput}");
        assert_eq!(s.socket_q_drops(), 0);
    }
}

/// Request overload starves the server application on the unmodified
/// kernel ("no resources left to support delivery of the arriving packets
/// to applications", §4.2).
#[test]
fn unmodified_end_system_starves_application() {
    let (_, low) = serve(KernelConfig::builder().local_delivery(Default::default()).ip_forwarding(false).build(), 2_000.0, 2_000);
    let (s, high) = serve(KernelConfig::builder().local_delivery(Default::default()).ip_forwarding(false).build(), 9_000.0, 4_000);
    assert!(
        low > 1_500.0,
        "below saturation the app keeps up, got {low}"
    );
    assert!(
        high < low * 0.35,
        "overload should collapse app goodput: {high} vs {low}"
    );
    assert!(
        s.socket_q_drops() > 0,
        "loss lands at the socket buffer: {s:?}"
    );
}

/// The modified kernel with socket-queue feedback sustains the server's
/// service rate through the same overload.
#[test]
fn polled_end_system_sustains_goodput() {
    let (s, high) = serve(
        KernelConfig::builder().polled(Quota::Limited(10)).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() }).ip_forwarding(false).build(),
        9_000.0,
        4_000,
    );
    assert!(
        high > 1_500.0,
        "feedback should hold the app's service rate, got {high} ({s:?})"
    );
}

/// Replies are real, routable packets: addressed back to the source host,
/// with valid IP headers (checked by the router's own forwarding path —
/// a reply with a bad header would be counted as a forwarding error).
#[test]
fn replies_are_well_formed() {
    let (s, _) = serve(
        KernelConfig::builder().polled(Quota::Limited(10)).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() }).ip_forwarding(false).build(),
        500.0,
        300,
    );
    assert_eq!(s.fwd_errors(), 0);
    assert_eq!(s.replies_created, 300);
    assert_eq!(s.transmitted, 300);
    assert_eq!(s.in_flight(), 0, "everything drained");
}

/// Without a listening application, packets addressed to the host are
/// counted as errors instead of silently vanishing.
#[test]
fn no_listener_counts_errors() {
    let (s, _) = serve(KernelConfig::builder().build(), 500.0, 100);
    assert_eq!(s.app_delivered, 0);
    assert_eq!(s.fwd_errors(), 100);
}

/// The request/reply path measures latency end to end (request arrival to
/// application consumption).
#[test]
fn app_latency_recorded() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() }).ip_forwarding(false).build();
    cfg.local = Some(LocalDeliveryConfig {
        reply: false,
        ..LocalDeliveryConfig::default()
    });
    let (s, _) = serve(cfg, 500.0, 200);
    assert_eq!(s.latency.count(), 200);
    assert!(s.latency.mean().raw() > 100_000, "sub-0.1ms is implausible");
}

/// The "innocent bystander" scenario (§1): "multicast and broadcast
/// protocols subject innocent-bystander hosts to loads that do not
/// interest them at all." A flood of traffic addressed to *other* hosts
/// still consumes the end-system's input path and starves its own
/// application on the unmodified kernel; the modified kernel's cycle
/// limiter protects it.
#[test]
fn bystander_flood_starves_the_unprotected_application() {
    // An end-system whose application is under light, legitimate load
    // while a bystander flood (packets for 10.1.0.99, not for us) arrives.
    let run = |cfg: KernelConfig| {
        let ctx_switch = cfg.cost.ctx_switch;
        let (st, kernel) = RouterKernel::build(cfg);
        let mut e = Engine::new(st, kernel, ctx_switch);

        // 500 req/s of real work for the application...
        let mut legit = TrafficGen::paper_default(500.0, FREQ, 21);
        let mut legit_factory = PacketFactory::paper_testbed();
        legit_factory.dst_ip = Ipv4Addr::new(10, 0, 0, 1);
        for t in legit.arrival_times(Cycles::ZERO, 500) {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface: 0,
                    pkt: Box::new(legit_factory.next_packet()),
                },
            );
        }
        // ...drowned in 9,000 pkts/s of bystander traffic.
        let mut storm = TrafficGen::paper_default(9_000.0, FREQ, 22);
        let mut storm_times = storm.arrival_times(Cycles::ZERO, 9_000);
        Wire::ethernet_10m(FREQ).pace(&mut storm_times, MIN_FRAME_LEN);
        let mut storm_factory = PacketFactory::paper_testbed(); // dst 10.1.0.99: not us.
        for t in storm_times {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface: 0,
                    pkt: Box::new(storm_factory.next_packet()),
                },
            );
        }

        e.run_until(FREQ.cycles_from_millis(900));
        e.workload().stats().clone()
    };

    let unmod = run(KernelConfig::builder().local_delivery(Default::default()).ip_forwarding(false).build());
    assert!(
        unmod.bystander_drops() > 1_000,
        "the storm is processed then discarded: {unmod:?}"
    );
    assert!(
        unmod.app_delivered < 100,
        "unprotected app should starve, served {}",
        unmod.app_delivered
    );

    // The modified end-system with a cycle limit: the storm cannot be
    // flow-filtered (legit requests share the ring with it), but bounded
    // input processing means (a) the application process actually runs,
    // serving several times more of its load, and (b) most of the storm is
    // shed for free at the interface instead of being processed and then
    // discarded.
    let mut protected = KernelConfig::builder().polled(Quota::Limited(10)).local_delivery(LocalDeliveryConfig { feedback: Some(FeedbackConfig::default()), ..Default::default() }).ip_forwarding(false).build();
    if let livelock_kernel::config::Mode::Polled(p) = &mut protected.mode {
        p.cycle_limit_frac = Some(0.5);
    }
    let prot = run(protected);
    assert!(
        prot.app_delivered > 2 * unmod.app_delivered.max(1),
        "protected app serves several times more: {} vs {}",
        prot.app_delivered,
        unmod.app_delivered
    );
    // The unmodified kernel also wastes device-level work on storm
    // packets it then drops at ipintrq; the modified kernel has no such
    // mid-pipeline loss and sheds the excess for free at the interface.
    assert!(
        unmod.ipintrq_drops() > 0,
        "unmodified wastes work at ipintrq: {unmod:?}"
    );
    assert_eq!(prot.ipintrq_drops(), 0);
    assert!(
        prot.rx_ring_drops() > unmod.rx_ring_drops(),
        "load is shed for free at the ring instead: {} vs {}",
        prot.rx_ring_drops(),
        unmod.rx_ring_drops()
    );
}
