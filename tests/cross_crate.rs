//! Cross-crate integration tests: the substrate layers working together
//! outside the packaged experiment harness — custom topologies, multiple
//! input interfaces, fairness, direct engine driving, and packet-level
//! verification of forwarding correctness.

use std::net::Ipv4Addr;

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::router::{Event, RouterKernel};
use livelock_machine::cpu::Engine;
use livelock_machine::trace::TraceEvent;
use livelock_machine::wire::Wire;
use livelock_net::ethernet::MacAddr;
use livelock_net::gen::{PacketFactory, TrafficGen};
use livelock_net::packet::{Packet, PacketId, MIN_FRAME_LEN};
use livelock_net::route::NextHop;
use livelock_sim::{Cycles, Freq};

fn engine_for(cfg: KernelConfig) -> Engine<RouterKernel> {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    Engine::new(st, kernel, ctx_switch)
}

/// Drive the router with three interfaces and verify routing spreads
/// correctly: traffic to 10.1/16 exits interface 1, traffic to 10.2/16
/// exits interface 2.
#[test]
fn three_interface_routing() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).build();
    cfg.num_ifaces = 3;
    let mut e = engine_for(cfg);
    e.workload_mut()
        .add_phantom_arp(Ipv4Addr::new(10, 2, 0, 50), MacAddr::local(0x50));

    let freq = Freq::mhz(100);
    let mut f1 = PacketFactory::paper_testbed(); // dst 10.1.0.99
    let mut f2 = PacketFactory::paper_testbed();
    f2.dst_ip = Ipv4Addr::new(10, 2, 0, 50);
    for k in 0..20u64 {
        let t = freq.cycles_from_micros(100 + k * 2_000);
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(f1.next_packet()),
            },
        );
        e.state_schedule(
            t + Cycles::new(50),
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(f2.next_packet()),
            },
        );
    }
    e.run_until(freq.cycles_from_millis(500));
    let k = e.workload();
    assert_eq!(k.opkts(1), 20, "10.1/16 out iface 1");
    assert_eq!(k.opkts(2), 20, "10.2/16 out iface 2");
    assert_eq!(k.stats().fwd_errors(), 0);
}

/// Round-robin fairness across input interfaces (§5.2): two saturating
/// input streams on different interfaces get comparable service from the
/// polling thread.
#[test]
fn polling_is_fair_across_input_interfaces() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).build();
    cfg.num_ifaces = 3;
    let mut e = engine_for(cfg);
    // Both input streams target the same output network (10.2/16).
    e.workload_mut()
        .add_phantom_arp(Ipv4Addr::new(10, 2, 0, 50), MacAddr::local(0x50));

    let freq = Freq::mhz(100);
    // Each input interface is fed at ~7000 pkts/s — together far beyond
    // the CPU's capacity, so service reflects the poller's fairness.
    for iface in [0usize, 1] {
        let mut gen = TrafficGen::paper_default(7_000.0, freq, 7 + iface as u64);
        let mut times = gen.arrival_times(Cycles::ZERO, 3_000);
        Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
        let mut factory = PacketFactory::paper_testbed();
        factory.src_ip = Ipv4Addr::new(10, iface as u8, 0, 2);
        factory.dst_ip = Ipv4Addr::new(10, 2, 0, 50);
        for t in times {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface,
                    pkt: Box::new(factory.next_packet()),
                },
            );
        }
    }
    e.run_until(freq.cycles_from_millis(400));

    let k = e.workload();
    // Service shares: packets taken from each interface's ring = arrivals
    // accepted minus still pending; compare via NIC ipkts minus pending.
    let served0 = k.stats().transmitted; // Total through interface 2.
    assert!(served0 > 0);
    // Fairness: neither input ring drops wildly more than the other.
    // (Both are fed identically; the poller alternates between them.)
    let drops: Vec<u64> = (0..2).map(|_| k.rx_ring_drops()).collect();
    assert!(drops[0] > 0, "saturated inputs must shed load");
}

/// The forwarded frame that exits the router is byte-correct: TTL
/// decremented, IP checksum still valid, link addresses rewritten to the
/// output network.
#[test]
fn forwarded_packet_bytes_are_correct() {
    // Use the net-layer forwarding primitives exactly as the kernel does.
    let mut factory = PacketFactory::paper_testbed();
    let pkt = factory.next_packet();
    let before = pkt.ipv4().expect("valid header");

    // Simulate the kernel's forwarding steps on a copy.
    let mut fwd = Packet::from_frame(PacketId(999), pkt.frame.clone());
    livelock_net::ipv4::decrement_ttl(fwd.ip_header_bytes_mut().unwrap()).unwrap();
    fwd.set_link_addrs(MacAddr::local(2), MacAddr::local(0x99))
        .unwrap();

    let after = fwd.ipv4().expect("still valid");
    assert_eq!(after.ttl, before.ttl - 1);
    assert!(after.checksum_ok());
    assert_eq!(after.src, before.src);
    assert_eq!(after.dst, before.dst);
    let eth = fwd.ethernet().unwrap();
    assert_eq!(eth.src, MacAddr::local(2));
    assert_eq!(eth.dst, MacAddr::local(0x99));
    // Payload untouched.
    assert_eq!(
        &fwd.frame[34..],
        &pkt.frame[34..],
        "UDP segment must be unmodified"
    );
}

/// Custom routes: a default route through a gateway resolves the gateway's
/// MAC, not the destination's.
#[test]
fn gateway_routes_resolve_gateway_mac() {
    let mut e = engine_for(KernelConfig::builder().polled(Quota::Limited(10)).build());
    let gw_ip = Ipv4Addr::new(10, 1, 0, 1);
    let gw_mac = MacAddr::local(0xAA);
    e.workload_mut().add_route(
        Ipv4Addr::new(0, 0, 0, 0),
        0,
        NextHop {
            iface: 1,
            gateway: Some(gw_ip),
        },
    );
    e.workload_mut().add_phantom_arp(gw_ip, gw_mac);

    let mut factory = PacketFactory::paper_testbed();
    factory.dst_ip = Ipv4Addr::new(203, 0, 113, 9); // Only the default route matches.
    e.state_schedule(
        Cycles::new(1_000),
        Event::RxArrive {
            iface: 0,
            pkt: Box::new(factory.next_packet()),
        },
    );
    e.run_until(Cycles::new(100_000_000));
    let k = e.workload();
    assert_eq!(k.stats().transmitted, 1, "{:?}", k.stats());
    assert_eq!(k.stats().fwd_errors(), 0);
}

/// A packet with a corrupted IP checksum is dropped by forwarding (and
/// counted), never transmitted.
#[test]
fn corrupt_checksum_is_dropped() {
    let mut e = engine_for(KernelConfig::builder().build());
    let mut factory = PacketFactory::paper_testbed();
    let mut pkt = factory.next_packet();
    pkt.frame[20] ^= 0xff; // Corrupt a byte inside the IP header.
    e.state_schedule(Cycles::new(1_000), Event::RxArrive { iface: 0, pkt: Box::new(pkt) });
    e.run_until(Cycles::new(100_000_000));
    let s = e.workload().stats();
    assert_eq!(s.fwd_errors(), 1);
    assert_eq!(s.transmitted, 0);
}

/// The engine's cycle accounting adds up: interrupt + thread + scheduler +
/// idle cycles equal elapsed virtual time.
#[test]
fn cycle_accounting_is_conservative() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).build();
    cfg.user_process = true;
    let mut e = engine_for(cfg);
    let freq = Freq::mhz(100);
    let mut gen = TrafficGen::paper_default(5_000.0, freq, 3);
    let mut factory = PacketFactory::paper_testbed();
    for t in gen.arrival_times(Cycles::ZERO, 1_000) {
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    let end = freq.cycles_from_millis(400);
    e.run_until(end);
    let u = e.usage();
    let accounted = u.total_intr() + u.total_thread() + u.sched_cycles + u.idle_cycles;
    assert_eq!(accounted, u.now, "cycles must be fully attributed");
    assert_eq!(u.now, end);
    assert!(u.total_intr() > Cycles::ZERO);
    // The compute-bound process never sleeps, so the CPU is never idle.
    assert_eq!(u.idle_cycles, Cycles::ZERO);
}

/// ICMP error origination: a TTL-expired packet triggers a Time Exceeded
/// message routed back to the offender's network, itself a real,
/// checksummed ICMP/IPv4 frame.
#[test]
fn ttl_expiry_generates_icmp_time_exceeded() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).build();
    cfg.icmp_errors = true;
    let mut e = engine_for(cfg);
    let mut factory = PacketFactory::paper_testbed();
    factory.ttl = 1;
    for k in 0..3u64 {
        e.state_schedule(
            Cycles::new(1_000 + k * 100_000),
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    e.run_until(Cycles::new(200_000_000));
    let s = e.workload().stats();
    assert_eq!(s.fwd_errors(), 3);
    assert_eq!(s.icmp_errors_sent, 3, "{s:?}");
    // The errors leave on interface 0, back toward the source network.
    assert_eq!(e.workload().opkts(0), 3);
    assert_eq!(e.workload().opkts(1), 0);
    assert_eq!(s.in_flight(), 0);
}

/// ICMP generation is paced: a flood of TTL-expired packets produces a
/// bounded number of errors, the rest suppressed.
#[test]
fn icmp_errors_are_paced() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(10)).build();
    cfg.icmp_errors = true;
    let mut e = engine_for(cfg);
    let mut factory = PacketFactory::paper_testbed();
    factory.ttl = 1;
    for k in 0..200u64 {
        e.state_schedule(
            Cycles::new(1_000 + k * 10_000), // 10k pkts/s of expired TTLs.
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    e.run_until(Cycles::new(500_000_000));
    let s = e.workload().stats();
    assert!(s.icmp_errors_sent < 50, "pacing failed: {s:?}");
    assert!(s.icmp_suppressed > 100, "suppression not counted: {s:?}");
    assert_eq!(s.in_flight(), 0);
}

/// With ICMP errors disabled (the default, as in the paper's experiments),
/// undeliverable packets vanish silently.
#[test]
fn icmp_disabled_by_default() {
    let mut e = engine_for(KernelConfig::builder().polled(Quota::Limited(10)).build());
    let mut factory = PacketFactory::paper_testbed();
    factory.ttl = 1;
    e.state_schedule(
        Cycles::new(1_000),
        Event::RxArrive {
            iface: 0,
            pkt: Box::new(factory.next_packet()),
        },
    );
    e.run_until(Cycles::new(100_000_000));
    let s = e.workload().stats();
    assert_eq!(s.icmp_errors_sent, 0);
    assert_eq!(s.fwd_errors(), 1);
}

/// The execution trace shows the livelock interleaving directly: under
/// sustained overload the unmodified kernel's CPU alternates between
/// interrupt handlers only — no thread ever runs — while the modified
/// kernel's trace is dominated by the polling thread.
#[test]
fn trace_reveals_the_interleaving() {
    let freq = Freq::mhz(100);
    let load = |e: &mut Engine<RouterKernel>| {
        let mut gen = TrafficGen::paper_default(12_000.0, freq, 11);
        let mut times = gen.arrival_times(Cycles::ZERO, 3_000);
        Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
        let mut factory = PacketFactory::paper_testbed();
        for t in times {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface: 0,
                    pkt: Box::new(factory.next_packet()),
                },
            );
        }
    };

    // Unmodified + screend: the screend thread exists but the trace shows
    // it starved once the flood begins.
    let mut e = engine_for(KernelConfig::builder().screend(Default::default()).build());
    e.enable_trace(100_000);
    load(&mut e);
    e.run_until(freq.cycles_from_millis(200));
    let t = e.trace().expect("tracing enabled");
    let intr_enters = t.count_matching(|ev| matches!(ev, TraceEvent::IntrEnter(_)));
    let thread_runs = t.count_matching(|ev| matches!(ev, TraceEvent::ThreadRun(_)));
    assert!(intr_enters > 500, "interrupt-dominated: {intr_enters}");
    assert!(
        thread_runs < intr_enters / 20,
        "threads starved: {thread_runs} runs vs {intr_enters} interrupts"
    );
    // Every handler entry has a matching exit, up to handlers still on
    // the interrupt stack when the run limit cut the simulation off.
    let intr_exits = t.count_matching(|ev| matches!(ev, TraceEvent::IntrExit(_)));
    assert_eq!(t.dropped(), 0, "ring must be large enough for this check");
    assert!(
        intr_enters >= intr_exits && intr_enters - intr_exits <= 8,
        "unbalanced nesting: {intr_enters} enters vs {intr_exits} exits"
    );

    // Modified kernel: interrupts are rare (disabled while polling), and
    // the polling thread holds the CPU.
    let mut e = engine_for(KernelConfig::builder().polled(Quota::Limited(10)).build());
    e.enable_trace(100_000);
    load(&mut e);
    e.run_until(freq.cycles_from_millis(200));
    let t = e.trace().expect("tracing enabled");
    let intr_enters_mod = t.count_matching(|ev| matches!(ev, TraceEvent::IntrEnter(_)));
    assert!(
        intr_enters_mod < intr_enters / 2,
        "modified kernel takes fewer interrupts: {intr_enters_mod} vs {intr_enters}"
    );
    assert!(!t.render().is_empty());
}

/// The latency layer cross-checks against the trace and the legacy
/// counters: every completed wire transmission is exactly one recorded
/// sojourn, the typed drop taxonomy never disagrees with the per-queue
/// counters, and the stage the histograms blame matches the interleaving
/// the trace shows (interrupt-dominated unmodified kernel → queueing in
/// `ipintrq`; thread-dominated polled kernel → packets age in the ring).
#[test]
fn latency_layer_agrees_with_trace_and_counters() {
    use livelock_kernel::stats::{DropReason, Stage};

    let freq = Freq::mhz(100);
    let load = |e: &mut Engine<RouterKernel>| {
        let mut gen = TrafficGen::paper_default(12_000.0, freq, 23);
        let mut times = gen.arrival_times(Cycles::ZERO, 3_000);
        Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
        let mut factory = PacketFactory::paper_testbed();
        for t in times {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface: 0,
                    pkt: Box::new(factory.next_packet()),
                },
            );
        }
    };
    let run = |cfg: KernelConfig| {
        let mut e = engine_for(cfg);
        e.enable_trace(100_000);
        load(&mut e);
        e.run_until(freq.cycles_from_millis(300));
        e
    };

    let unmod = run(KernelConfig::builder().build());
    let polled = run(KernelConfig::builder().polled(Quota::Limited(5)).build());

    for e in [&unmod, &polled] {
        let s = e.workload().stats();
        // One sojourn per completed transmission, no more, no less.
        assert_eq!(s.latency.count(), s.transmitted, "{s:?}");
        // Double bookkeeping: taxonomy and legacy counters agree. (RED
        // drops land in `ifq_drops` too, and feedback inhibits in
        // `rx_ring_drops`, per the `record_drop` contract.)
        assert_eq!(
            s.drops.get(DropReason::RxRingFull) + s.drops.get(DropReason::FeedbackInhibit),
            s.rx_ring_drops()
        );
        assert_eq!(s.drops.get(DropReason::IpintrqFull), s.ipintrq_drops());
        assert_eq!(
            s.drops.get(DropReason::OutputQueueFull) + s.drops.get(DropReason::RedEarlyDrop),
            s.ifq_drops()
        );
        // Conservation: everything that arrived was delivered, dropped
        // (for a typed reason), or is still in flight.
        assert_eq!(
            s.arrived,
            s.transmitted + s.drops.total() + s.in_flight(),
            "{s:?}"
        );
    }

    // Where the time goes matches what the trace shows. The unmodified
    // kernel's interrupt-dominated interleaving ages packets in the
    // bounded `ipintrq`; the polled kernel has no ipintrq at all, so its
    // packets wait in the ring for the polling thread instead.
    let su = unmod.workload().stats();
    let sp = polled.workload().stats();
    let tu = unmod.trace().expect("tracing enabled");
    let tp = polled.trace().expect("tracing enabled");
    let intr_u = tu.count_matching(|ev| matches!(ev, TraceEvent::IntrEnter(_)));
    let intr_p = tp.count_matching(|ev| matches!(ev, TraceEvent::IntrEnter(_)));
    assert!(intr_p < intr_u / 2, "polled takes fewer interrupts");
    assert!(
        su.latency.stage(Stage::Ipq).quantile(0.5) > sp.latency.stage(Stage::Ipq).quantile(0.99),
        "unmodified sojourns are ipintrq-dominated"
    );
    assert!(
        sp.latency.stage(Stage::Ring).quantile(0.5) > su.latency.stage(Stage::Ring).quantile(0.5),
        "polled sojourns age in the RX ring instead"
    );
}

/// The router answers ARP who-has requests for its own interface address
/// with a byte-correct reply, and learns the asker's mapping.
#[test]
fn arp_requests_are_answered() {
    use livelock_net::arp::{ArpOp, ArpPacket, ARP_PACKET_LEN};
    use livelock_net::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};

    for cfg in [
        KernelConfig::builder().build(),
        KernelConfig::builder().polled(Quota::Limited(10)).build(),
    ] {
        let mut e = engine_for(cfg);
        let asker_mac = MacAddr::local(0x700);
        let asker_ip = Ipv4Addr::new(10, 0, 0, 77);
        let request = ArpPacket {
            op: ArpOp::Request,
            sender_mac: asker_mac,
            sender_ip: asker_ip,
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::new(10, 0, 0, 1), // The router's iface 0.
        };
        let mut frame = vec![0u8; ETHERNET_HEADER_LEN + ARP_PACKET_LEN];
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: asker_mac,
            ethertype: EtherType::Arp,
        }
        .encode(&mut frame)
        .unwrap();
        request.encode(&mut frame[ETHERNET_HEADER_LEN..]).unwrap();
        e.state_schedule(
            Cycles::new(1_000),
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(Packet::from_frame(PacketId(1), frame)),
            },
        );
        e.run_until(Cycles::new(100_000_000));
        let s = e.workload().stats();
        assert_eq!(s.arp_handled, 1, "{s:?}");
        assert_eq!(s.arp_replies, 1);
        assert_eq!(e.workload().opkts(0), 1, "reply leaves the asking wire");
        assert_eq!(s.fwd_errors(), 0);
        assert_eq!(s.in_flight(), 0);
    }
}

/// An ARP request for an address the router does not own is consumed
/// silently (promiscuous broadcast traffic must not become work).
#[test]
fn foreign_arp_requests_are_ignored() {
    use livelock_net::arp::{ArpOp, ArpPacket, ARP_PACKET_LEN};
    use livelock_net::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};

    let mut e = engine_for(KernelConfig::builder().polled(Quota::Limited(10)).build());
    let request = ArpPacket {
        op: ArpOp::Request,
        sender_mac: MacAddr::local(0x700),
        sender_ip: Ipv4Addr::new(10, 0, 0, 77),
        target_mac: MacAddr::ZERO,
        target_ip: Ipv4Addr::new(10, 0, 0, 200), // Somebody else.
    };
    let mut frame = vec![0u8; ETHERNET_HEADER_LEN + ARP_PACKET_LEN];
    EthernetHeader {
        dst: MacAddr::BROADCAST,
        src: MacAddr::local(0x700),
        ethertype: EtherType::Arp,
    }
    .encode(&mut frame)
    .unwrap();
    request.encode(&mut frame[ETHERNET_HEADER_LEN..]).unwrap();
    e.state_schedule(
        Cycles::new(1_000),
        Event::RxArrive {
            iface: 0,
            pkt: Box::new(Packet::from_frame(PacketId(1), frame)),
        },
    );
    e.run_until(Cycles::new(100_000_000));
    let s = e.workload().stats();
    assert_eq!(s.arp_handled, 1);
    assert_eq!(s.arp_replies, 0);
    assert_eq!(s.transmitted, 0);
}

/// §5.1 interrupt rate limiting defers rather than loses interrupts: at a
/// light load above the limit, every packet is still eventually forwarded
/// (batched behind deferred interrupts), with far fewer interrupts taken.
#[test]
fn rate_limited_interrupts_defer_without_loss() {
    let freq = Freq::mhz(100);
    let mut e = engine_for(KernelConfig::builder().intr_rate_limit(500.0, 4).build());
    let mut gen = TrafficGen::paper_default(2_000.0, freq, 31);
    let mut factory = PacketFactory::paper_testbed();
    for t in gen.arrival_times(Cycles::ZERO, 400) {
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    e.run_until(freq.cycles_from_millis(400));
    let s = e.workload().stats();
    assert_eq!(s.transmitted, 400, "no packet lost to deferral: {s:?}");
    // 400 packets arrive in ~0.2 s; at ≤500 rx interrupts/s the receive
    // source fires at most ~100 times plus the burst allowance, far less
    // than one per packet. (Source index 3 = interface 0 receive: sources
    // register as clock, softclock, softnet, then rx/tx per interface.)
    let rx_taken = e
        .state()
        .intr
        .taken_count(livelock_machine::intr::IntrSrc(3));
    assert!(
        rx_taken < 150,
        "rx interrupts should be rate-bounded, took {rx_taken}"
    );
    assert!(rx_taken < 400, "strictly fewer than one per packet");
}

// ---------------------------------------------------------------------------
// Conserved cycle ledger and its exports (timeline CSV, Chrome trace).
// ---------------------------------------------------------------------------

/// A minimal recursive-descent JSON well-formedness checker, kept in-repo
/// so the Chrome-trace tests need no external parser. Strict: validates
/// escapes, rejects trailing garbage.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl<'a> Parser<'a> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }
        fn value(&mut self) -> Result<Value, String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".into()),
            }
        }
        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            while matches!(
                self.b.get(self.i),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|n| n.is_finite())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.b.get(self.i) {
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.b.get(self.i) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .b
                                    .get(self.i + 1..self.i + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                // Surrogates are rejected: the exporter
                                // only \u-escapes control characters.
                                out.push(
                                    char::from_u32(cp).ok_or(format!("surrogate \\u{hex}"))?,
                                );
                                self.i += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i)),
                        }
                        self.i += 1;
                    }
                    Some(&c) if c < 0x20 => {
                        return Err(format!("raw control byte {c:#x} inside string"))
                    }
                    Some(_) => {
                        let s = std::str::from_utf8(&self.b[self.i..])
                            .map_err(|e| e.to_string())?;
                        let ch = s.chars().next().unwrap();
                        out.push(ch);
                        self.i += ch.len_utf8();
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }
        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                }
            }
        }
        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut pairs = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.eat(b':')?;
                let val = self.value()?;
                pairs.push((key, val));
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                }
            }
        }
    }

    /// Parses a complete JSON document (no trailing garbage allowed).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }
}

/// The conserved cycle ledger attributes every elapsed cycle to exactly
/// one CPU class, on both the unmodified and the polled kernel at
/// overload, and agrees with the engine's coarse usage counters.
#[test]
fn cycle_ledger_is_conserved_at_overload() {
    use livelock_machine::ledger::CpuClass;

    let freq = Freq::mhz(100);
    let load = |e: &mut Engine<RouterKernel>| {
        let mut gen = TrafficGen::paper_default(12_000.0, freq, 17);
        let mut times = gen.arrival_times(Cycles::ZERO, 3_000);
        Wire::ethernet_10m(freq).pace(&mut times, MIN_FRAME_LEN);
        let mut factory = PacketFactory::paper_testbed();
        for t in times {
            e.state_schedule(
                t,
                Event::RxArrive {
                    iface: 0,
                    pkt: Box::new(factory.next_packet()),
                },
            );
        }
    };

    for (cfg, busiest_expected) in [
        (
            KernelConfig::builder().screend(Default::default()).build(),
            CpuClass::RxIntr,
        ),
        (
            KernelConfig::builder().polled(Quota::Limited(10)).build(),
            CpuClass::PollThread,
        ),
    ] {
        let mut e = engine_for(cfg);
        load(&mut e);
        let end = freq.cycles_from_millis(250);
        e.run_until(end);

        let ledger = e.state().ledger();
        assert_eq!(ledger.total(), end, "every cycle attributed to a class");
        let shares = ledger.shares();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "shares sum to {sum}");

        // The ledger agrees with the engine's coarse usage counters where
        // the two overlap: idle is idle, and the scheduler's overhead is
        // charged to kernel-other.
        let u = e.usage();
        assert_eq!(ledger.get(CpuClass::Idle), u.idle_cycles);
        assert!(ledger.get(CpuClass::KernelOther) >= u.sched_cycles);

        let busiest = CpuClass::ALL
            .iter()
            .copied()
            .max_by_key(|&c| ledger.get(c))
            .unwrap();
        assert_eq!(
            busiest, busiest_expected,
            "overload is spent where the paper says: {shares:?}"
        );
    }
}

/// The Chrome-trace export of a real overload trial is a well-formed JSON
/// document: a `traceEvents` array of complete event objects, duration
/// events balanced, timestamps monotonic in emission order.
#[test]
fn chrome_trace_export_is_well_formed() {
    use livelock_kernel::experiment::{run_trial_traced, TrialSpec};

    let spec = TrialSpec {
        rate_pps: 12_000.0,
        n_packets: 1_000,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    };
    let (result, trace_json) = run_trial_traced(&spec, 1 << 18);
    assert!(result.transmitted > 0);

    let doc = json::parse(&trace_json).expect("export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("top-level traceEvents array");
    assert!(events.len() > 100, "a real trial traces many events");

    let mut names = std::collections::HashSet::new();
    let (mut begins, mut ends, mut last_ts) = (0usize, 0usize, f64::NEG_INFINITY);
    for ev in events {
        let name = ev.get("name").and_then(json::Value::as_str).expect("name");
        let ph = ev.get("ph").and_then(json::Value::as_str).expect("ph");
        assert!(ev.get("pid").and_then(json::Value::as_num).is_some());
        assert!(ev.get("tid").and_then(json::Value::as_num).is_some());
        if ph == "M" {
            continue; // Metadata records carry no timestamp.
        }
        names.insert(name.to_string());
        let ts = ev.get("ts").and_then(json::Value::as_num).expect("ts");
        assert!(ts >= 0.0);
        assert!(
            ts >= last_ts,
            "timestamps monotonic in emission order: {ts} after {last_ts}"
        );
        last_ts = ts;
        match ph {
            "B" => begins += 1,
            "E" => ends += 1,
            "X" => {
                let dur = ev.get("dur").and_then(json::Value::as_num).expect("dur");
                assert!(dur >= 0.0);
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "every duration begin has a matching end");
    assert!(names.iter().any(|n| n.starts_with("nic-rx #")), "{names:?}");
    assert!(names.contains("netpoll"), "{names:?}");
}

/// A faulted trial's Chrome-trace export stays well-formed JSON, and
/// every injection/recovery surfaces as an instant ("i") marker event.
#[test]
fn chrome_trace_fault_markers_are_well_formed() {
    use livelock_kernel::experiment::{run_trial_traced, TrialSpec};
    use livelock_machine::fault::{FaultKind, FaultPlan};

    let cfg = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default())
        .build();
    let freq = cfg.cost.freq;
    let mut plan = FaultPlan::new();
    plan.push(freq.cycles_from_millis(50), FaultKind::ScreendStall { ticks: 2 });
    plan.push(freq.cycles_from_millis(80), FaultKind::LinkFlap {
        iface: 0,
        down_cycles: freq.cycles_from_millis(5).raw(),
    });
    let n_faults = plan.len();
    let spec = TrialSpec {
        rate_pps: 1_000.0,
        n_packets: 400,
        ..TrialSpec::new(KernelConfig { faults: Some(plan), ..cfg })
    };
    let (_, trace_json) = run_trial_traced(&spec, 1 << 16);
    let doc = json::parse(&trace_json).expect("faulted export must be valid JSON");
    let events = doc.get("traceEvents").and_then(json::Value::as_arr).unwrap();
    let markers: Vec<&str> = events
        .iter()
        .filter(|ev| ev.get("ph").and_then(json::Value::as_str) == Some("i"))
        .filter_map(|ev| ev.get("name").and_then(json::Value::as_str))
        .filter(|n| n.starts_with("fault: ") || n.starts_with("recover: "))
        .collect();
    let injected = markers.iter().filter(|n| n.starts_with("fault: ")).count();
    assert_eq!(injected, n_faults, "one marker per injection: {markers:?}");
    assert!(
        markers.iter().any(|n| n.starts_with("recover: ")),
        "the stall's restart leaves a recovery marker: {markers:?}"
    );
}

/// Hostile label names survive the exporter: quotes, backslashes and
/// control characters are escaped so the document still parses, and the
/// parsed string round-trips to the original.
#[test]
fn chrome_trace_escapes_hostile_names() {
    use livelock_machine::chrome_trace_json;
    use livelock_machine::intr::IntrSrc;
    use livelock_machine::trace::TraceRecord;

    let hostile = "he said \"x\\y\"\nthen\ttabbed\u{1}";
    let records = [
        TraceRecord {
            at: Cycles::new(100),
            event: TraceEvent::IntrEnter(IntrSrc(0)),
        },
        TraceRecord {
            at: Cycles::new(200),
            event: TraceEvent::IntrExit(IntrSrc(0)),
        },
    ];
    let json_doc = chrome_trace_json(
        &records,
        Freq::mhz(100),
        |_| hostile.to_string(),
        |_| String::new(),
    );
    let doc = json::parse(&json_doc).expect("hostile names must still parse");
    let events = doc.get("traceEvents").and_then(json::Value::as_arr).unwrap();
    let round_tripped = events
        .iter()
        .filter_map(|ev| ev.get("name").and_then(json::Value::as_str))
        .filter(|n| *n == hostile)
        .count();
    assert_eq!(round_tripped, 2, "escaped name round-trips exactly");
}

/// The telemetry timeline is deterministic under the parallel sweep
/// executor: its CSV is byte-identical between serial and any job count,
/// as is every other field of the trial result.
#[test]
fn timeline_csv_is_identical_at_any_job_count() {
    use livelock_kernel::experiment::{sweep, TrialSpec};
    use livelock_kernel::par::Parallelism;
    use livelock_kernel::telemetry::TelemetryConfig;

    let cfg = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .telemetry(TelemetryConfig {
            interval_ticks: 2,
            max_samples: 4096,
        })
        .build();
    let base = TrialSpec {
        n_packets: 800,
        ..TrialSpec::new(cfg)
    };
    let freq = base.config.cost.freq;
    let rates = [2_000.0, 8_000.0, 12_000.0];

    let serial = sweep("serial", &base, &rates, Parallelism::Serial);
    let serial_csvs: Vec<String> = serial
        .trials
        .iter()
        .map(|t| t.timeline.as_ref().expect("sampler enabled").to_csv(freq))
        .collect();
    assert!(serial_csvs.iter().all(|c| c.lines().count() > 2));

    for jobs in [2usize, 5] {
        let par = sweep("par", &base, &rates, Parallelism::Jobs(jobs));
        assert_eq!(serial.trials, par.trials, "jobs={jobs}");
        for (i, t) in par.trials.iter().enumerate() {
            let csv = t.timeline.as_ref().expect("sampler enabled").to_csv(freq);
            assert_eq!(csv, serial_csvs[i], "timeline CSV at jobs={jobs} rate #{i}");
        }
    }
}
