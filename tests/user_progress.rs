//! §7-focused tests: CPU accounting for user-level progress, including the
//! zero-load baseline the paper reports ("even with no input load, the
//! user process gets about 94% of the CPU cycles").

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, TrialSpec};
use livelock_kernel::router::RouterKernel;
use livelock_machine::cpu::Engine;
use livelock_sim::{Cycles, Freq};

const FREQ: Freq = Freq::mhz(100);

/// Runs the machine for `millis` with no network traffic at all and
/// returns the compute-bound process's CPU share.
fn zero_load_share(cfg: KernelConfig, millis: u64) -> f64 {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    let mut e = Engine::new(st, kernel, ctx_switch);
    let end = FREQ.cycles_from_millis(millis);
    e.run_until(end);
    let tid = e.workload().user_tid().expect("user process configured");
    e.state().thread_cycles(tid).fraction_of(end)
}

/// The paper's baseline: ~94% of the CPU for the user process on an
/// otherwise idle machine (the rest is clock + housekeeping + switching).
#[test]
fn zero_load_user_share_is_about_94_percent() {
    let mut cfg = KernelConfig::builder().build();
    cfg.user_process = true;
    let share = zero_load_share(cfg, 500);
    assert!(
        (0.92..0.96).contains(&share),
        "zero-load user share {share} should be ~0.94"
    );
}

/// The baseline holds on the modified kernel too — the polling machinery
/// costs nothing while no packets arrive.
#[test]
fn modified_kernel_is_free_when_idle() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit(0.25).user_process(true).build();
    cfg.user_process = true;
    let share = zero_load_share(cfg, 500);
    assert!(
        (0.92..0.96).contains(&share),
        "idle modified-kernel share {share}"
    );
}

/// Under flood with no cycle limit, the user process starves on both
/// kernels (the §7 observation that motivated the limiter).
#[test]
fn flood_starves_user_without_limit() {
    for mut cfg in [
        KernelConfig::builder().build(),
        KernelConfig::builder().polled(Quota::Limited(10)).build(),
    ] {
        cfg.user_process = true;
        let r = run_trial(&TrialSpec {
            rate_pps: 10_000.0,
            n_packets: 3_000,
            ..TrialSpec::new(cfg)
        });
        assert!(
            r.aggregate().user_cpu_frac < 0.05,
            "expected starvation, got {}",
            r.aggregate().user_cpu_frac
        );
        // Meanwhile the kernel still forwarded at its saturation rate.
        assert!(r.delivered_pps > 1_000.0);
    }
}

/// The limiter's guarantee composes with screend: a user process, the
/// screening process and the network stack all make progress.
#[test]
fn limiter_with_screend_everyone_progresses() {
    let mut cfg = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default())
        .build();
    cfg.user_process = true;
    if let livelock_kernel::config::Mode::Polled(p) = &mut cfg.mode {
        p.cycle_limit_frac = Some(0.5);
    }
    let r = run_trial(&TrialSpec {
        rate_pps: 8_000.0,
        n_packets: 3_000,
        ..TrialSpec::new(cfg)
    });
    assert!(
        r.delivered_pps > 500.0,
        "forwarding alive: {}",
        r.delivered_pps
    );
    assert!(r.aggregate().user_cpu_frac > 0.10, "user alive: {}", r.aggregate().user_cpu_frac);
}

/// Tighter thresholds strictly trade forwarding for user CPU.
#[test]
fn threshold_trades_forwarding_for_user_cpu() {
    let mut results = Vec::new();
    for thr in [0.25, 0.75] {
        let r = run_trial(&TrialSpec {
            rate_pps: 8_000.0,
            n_packets: 2_500,
            ..TrialSpec::new(
                KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit(thr).user_process(true).build(),
            )
        });
        results.push(r);
    }
    assert!(results[0].aggregate().user_cpu_frac > results[1].aggregate().user_cpu_frac);
    assert!(results[0].delivered_pps < results[1].delivered_pps);
}

/// The quantum-based scheduler splits the CPU fairly between two
/// equal-priority user processes (the compute job and screend) when both
/// are runnable — a sanity check on the thread scheduler itself.
#[test]
fn user_processes_share_fairly() {
    let mut cfg = KernelConfig::builder()
        .polled(Quota::Limited(10))
        .screend(Default::default())
        .feedback(Default::default())
        .build();
    cfg.user_process = true;
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    let mut e = Engine::new(st, kernel, ctx_switch);

    // Saturate screend so it is always runnable, like the compute job.
    use livelock_kernel::router::Event;
    use livelock_net::gen::{PacketFactory, TrafficGen};
    let mut gen = TrafficGen::paper_default(8_000.0, FREQ, 5);
    let mut factory = PacketFactory::paper_testbed();
    for t in gen.arrival_times(Cycles::ZERO, 4_000) {
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    let end = FREQ.cycles_from_millis(400);
    e.run_until(end);

    let user = e.workload().user_tid().expect("user thread");
    let user_cy = e.state().thread_cycles(user).raw() as f64;
    // screend's share: thread 1 in spawn order (poll=0, screend=1, user=2).
    let usage = e.usage();
    let screend_cy = usage.thread_by_id[1].raw() as f64;
    let ratio = user_cy / screend_cy;
    assert!(
        (0.5..2.0).contains(&ratio),
        "equal-priority threads should share within 2x, got {ratio}"
    );
}
