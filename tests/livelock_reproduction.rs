//! End-to-end reproduction tests: the paper's headline claims, asserted.
//!
//! Each test runs full trials through the simulated router and checks the
//! qualitative result the paper reports. Trial sizes are reduced from the
//! paper's 10,000 packets to keep the suite fast; the `figures` binary
//! regenerates the full-fidelity data.

use livelock_core::analysis::{classify, mlfrr, overload_stability, LivelockVerdict};
use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::experiment::{run_trial, sweep, SweepResult, TrialSpec};
use livelock_kernel::par::Parallelism;

const OVERLOAD_RATES: &[f64] = &[2_000.0, 4_000.0, 6_000.0, 9_000.0, 12_000.0];

fn sweep_of(cfg: KernelConfig, n_packets: usize) -> SweepResult {
    let base = TrialSpec {
        n_packets,
        ..TrialSpec::new(cfg)
    };
    sweep("test", &base, OVERLOAD_RATES, Parallelism::Auto)
}

/// §6.2 / Figure 6-1: the unmodified kernel's throughput declines beyond
/// its MLFRR ("throughput decreases with increasing offered load").
#[test]
fn unmodified_kernel_degrades_under_overload() {
    let s = sweep_of(KernelConfig::builder().build(), 2_000);
    let pts = s.points();
    let m = mlfrr(&pts, 0.95).expect("loss-free region exists");
    assert!(
        (3_000.0..5_500.0).contains(&m),
        "MLFRR {m} outside the paper's band (peaked at 4700)"
    );
    let verdict = classify(&pts, 0.10, 0.80);
    assert_eq!(verdict, LivelockVerdict::Degrading, "points: {pts:?}");
}

/// §6.2 / Figure 6-1: with screend, the unmodified kernel livelocks
/// completely ("complete livelock set in at about 6000 packets/sec").
#[test]
fn unmodified_with_screend_livelocks() {
    let s = sweep_of(KernelConfig::builder().screend(Default::default()).build(), 2_000);
    let pts = s.points();
    assert_eq!(classify(&pts, 0.10, 0.80), LivelockVerdict::Livelock);
    // Delivered throughput at 9-12k pkts/s input is (near) zero.
    let tail = &s.trials[3..];
    for t in tail {
        assert!(
            t.delivered_pps < 100.0,
            "expected livelock at {} pkts/s, delivered {}",
            t.offered_pps,
            t.delivered_pps
        );
    }
}

/// §6.5 / Figure 6-3: the modified kernel with a quota holds a stable
/// plateau at/above the unmodified kernel's MLFRR.
#[test]
fn modified_kernel_eliminates_livelock() {
    let unmod = sweep_of(KernelConfig::builder().build(), 2_000);
    let polled = sweep_of(KernelConfig::builder().polled(Quota::Limited(10)).build(), 2_000);
    let u = unmod.points();
    let p = polled.points();
    assert_eq!(classify(&p, 0.10, 0.80), LivelockVerdict::StablePlateau);
    assert!(overload_stability(&p) > 0.9, "plateau must be flat");
    // "The modified kernel slightly improves the MLFRR": its plateau sits
    // at or above the unmodified kernel's peak.
    let unmod_peak = u.iter().map(|x| x.delivered).fold(0.0, f64::max);
    let polled_tail = p.last().expect("nonempty").delivered;
    assert!(
        polled_tail >= 0.95 * unmod_peak,
        "polled tail {polled_tail} vs unmodified peak {unmod_peak}"
    );
}

/// §6.6 / Figure 6-3: without a quota, the modified kernel livelocks via
/// transmit starvation — worse than the unmodified kernel at high load.
#[test]
fn no_quota_polling_livelocks_via_transmit_starvation() {
    let s = sweep_of(KernelConfig::builder().polled(Quota::Unlimited).build(), 2_000);
    let pts = s.points();
    assert_eq!(classify(&pts, 0.10, 0.80), LivelockVerdict::Livelock);
    // The loss shows up at the output queue, after full processing —
    // "packets are discarded for lack of space on the output queue".
    let worst = s.trials.last().expect("nonempty");
    assert!(
        worst.ifq_drops > 0,
        "expected output-queue drops, got {worst:?}"
    );
}

/// §6.6.1 / Figure 6-4: queue-state feedback rescues the screend
/// configuration; no feedback is about as bad as unmodified.
#[test]
fn feedback_rescues_screend() {
    let nofb = sweep_of(
        KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).build(),
        2_000,
    );
    let fb = sweep_of(
        KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build(),
        2_000,
    );
    assert_eq!(
        classify(&nofb.points(), 0.10, 0.80),
        LivelockVerdict::Livelock
    );
    assert_eq!(
        classify(&fb.points(), 0.10, 0.80),
        LivelockVerdict::StablePlateau
    );
    // The plateau sits in the paper's screend-capacity band (~2000).
    let tail = fb.trials.last().expect("nonempty").delivered_pps;
    assert!(
        (1_500.0..2_500.0).contains(&tail),
        "screend plateau {tail} outside band"
    );
}

/// §6.6.2 / Figures 6-5: small quotas are stable; the livelock-vs-quota
/// ordering is monotone (quota 10 sustains at least what quota 100 does,
/// which beats no quota).
#[test]
fn quota_ordering_under_overload() {
    let mut tails = Vec::new();
    for q in [Quota::Limited(10), Quota::Limited(100), Quota::Unlimited] {
        let s = sweep_of(KernelConfig::builder().polled(q).build(), 2_000);
        tails.push(s.trials.last().expect("nonempty").delivered_pps);
    }
    assert!(
        tails[0] >= tails[1] * 0.98,
        "quota 10 ({}) should not lose to quota 100 ({})",
        tails[0],
        tails[1]
    );
    assert!(
        tails[1] > tails[2] + 1_000.0,
        "quota 100 ({}) should beat no-quota ({})",
        tails[1],
        tails[2]
    );
}

/// §6.6.2 / Figure 6-6: with screend and feedback, every quota (infinity
/// included) avoids livelock — "the queue-state feedback mechanism
/// prevents livelock".
#[test]
fn feedback_prevents_livelock_at_any_quota() {
    for q in [Quota::Limited(5), Quota::Limited(100), Quota::Unlimited] {
        let s = sweep_of(KernelConfig::builder().polled(q).screend(Default::default()).feedback(Default::default()).build(), 2_000);
        assert_eq!(
            classify(&s.points(), 0.10, 0.80),
            LivelockVerdict::StablePlateau,
            "quota {q:?}"
        );
    }
}

/// §7 / Figure 7-1: the cycle limiter guarantees user-process progress
/// under overload, proportional to the threshold.
#[test]
fn cycle_limit_guarantees_user_progress() {
    let rate = 8_000.0;
    let mut shares = Vec::new();
    for thr in [0.25, 0.50, 0.75, 1.00] {
        let r = run_trial(&TrialSpec {
            rate_pps: rate,
            n_packets: 2_000,
            ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit(thr).user_process(true).build())
        });
        shares.push(r.aggregate().user_cpu_frac);
    }
    // No limit (100%): starved, "no measurable progress".
    assert!(shares[3] < 0.05, "unlimited share {}", shares[3]);
    // Tighter thresholds leave strictly more CPU to the user process.
    assert!(shares[0] > shares[1] && shares[1] > shares[2] && shares[2] > shares[3]);
    // 25% threshold leaves the majority of the machine to the user.
    assert!(shares[0] > 0.5, "25% threshold share {}", shares[0]);
    // The user's share shrinks by roughly the threshold steps (25% each,
    // very loosely bounded to stay robust to overheads).
    assert!(shares[0] - shares[2] > 0.30);
}

/// §7: with a cycle limit, forwarding still happens (input is inhibited,
/// not abandoned).
#[test]
fn cycle_limit_still_forwards_packets() {
    let r = run_trial(&TrialSpec {
        rate_pps: 6_000.0,
        n_packets: 2_000,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(5)).cycle_limit(0.5).user_process(true).build())
    });
    assert!(
        r.delivered_pps > 1_000.0,
        "limited kernel still forwards, got {}",
        r.delivered_pps
    );
}

/// The whole simulation is deterministic: identical specs produce
/// bit-identical results; different seeds differ.
#[test]
fn trials_are_deterministic() {
    let spec = TrialSpec {
        rate_pps: 9_000.0,
        n_packets: 1_500,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).screend(Default::default()).feedback(Default::default()).build())
    };
    let a = run_trial(&spec);
    let b = run_trial(&spec);
    assert_eq!(a.transmitted, b.transmitted);
    assert_eq!(a.delivered_pps, b.delivered_pps);
    assert_eq!(a.per_cpu(), b.per_cpu());
    assert_eq!(a.rx_ring_drops, b.rx_ring_drops);
}

/// Nothing can exceed the 10 Mbit/s Ethernet's ~14,880 pkts/s: the wire
/// model paces infeasible schedules.
#[test]
fn ethernet_rate_cap_is_respected() {
    let r = run_trial(&TrialSpec {
        rate_pps: 50_000.0, // Far beyond the wire.
        n_packets: 2_000,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    });
    assert!(
        r.offered_pps < 15_000.0,
        "offered {} exceeds the Ethernet cap",
        r.offered_pps
    );
}

/// Latency under light load is dominated by per-packet processing, not
/// queueing; under overload the modified kernel's latency stays bounded by
/// ring + quota effects rather than growing without bound.
#[test]
fn latency_bounded_on_modified_kernel() {
    let light = run_trial(&TrialSpec {
        rate_pps: 500.0,
        n_packets: 500,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    });
    let heavy = run_trial(&TrialSpec {
        rate_pps: 12_000.0,
        n_packets: 3_000,
        ..TrialSpec::new(KernelConfig::builder().polled(Quota::Limited(10)).build())
    });
    assert!(
        light.latency_mean.raw() < 2_000_000,
        "light {}",
        light.latency_mean
    );
    // Worst case: a full rx ring (32) plus a quota rotation ahead of you.
    assert!(
        heavy.latency_p99.raw() < 50_000_000,
        "heavy p99 {}",
        heavy.latency_p99
    );
}

/// §5.1: limiting the interrupt arrival rate "prevents system saturation
/// but might not guarantee progress" — with screend, the rate-limited
/// unmodified kernel still livelocks, because the starvation is at thread
/// priority, not in interrupt dispatch overhead.
#[test]
fn interrupt_rate_limiting_alone_does_not_prevent_livelock() {
    let mut cfg = KernelConfig::builder().intr_rate_limit(2_000.0, 4).build();
    cfg.screend = Some(livelock_kernel::config::ScreendConfig::default());
    let s = sweep_of(cfg, 2_000);
    assert_eq!(
        classify(&s.points(), 0.10, 0.80),
        LivelockVerdict::Livelock,
        "rate limiting must not fix the screend livelock: {:?}",
        s.points()
    );
}

/// §5.1 upside: rate limiting does bound interrupt dispatch overhead — the
/// limited kernel takes far fewer interrupts under flood for the same
/// delivered throughput (within a tolerance band).
#[test]
fn interrupt_rate_limiting_bounds_interrupt_count() {
    let base = TrialSpec {
        rate_pps: 12_000.0,
        n_packets: 3_000,
        ..TrialSpec::new(KernelConfig::builder().build())
    };
    let unlimited = run_trial(&base);
    let limited = run_trial(&TrialSpec {
        config: KernelConfig::builder().intr_rate_limit(1_000.0, 4).build(),
        ..base
    });
    assert!(
        limited.aggregate().interrupts_taken < unlimited.aggregate().interrupts_taken,
        "limited {} !< unlimited {}",
        limited.aggregate().interrupts_taken,
        unlimited.aggregate().interrupts_taken
    );
    // Batching replaces the lost interrupts; delivery stays comparable.
    assert!(
        limited.delivered_pps > 0.7 * unlimited.delivered_pps,
        "limited {} vs unlimited {}",
        limited.delivered_pps,
        unlimited.delivered_pps
    );
}

/// A faster CPU shifts the MLFRR up proportionally but cannot change the
/// *shape*: the unmodified kernel still degrades and the modified kernel
/// still plateaus ("inefficient code tends to exacerbate receive livelock,
/// by lowering the MLFRR" — and vice versa, §5.4).
#[test]
fn faster_cpu_raises_mlfrr_but_not_the_verdict() {
    use livelock_machine::cost::CostModel;

    let mut slow_unmod = KernelConfig::builder().build();
    slow_unmod.cost = CostModel::scaled(0.5);
    let mut fast_unmod = KernelConfig::builder().build();
    fast_unmod.cost = CostModel::scaled(2.0);

    let slow = sweep_of(slow_unmod, 2_000);
    let fast = sweep_of(fast_unmod, 2_000);
    let slow_m = mlfrr(&slow.points(), 0.95).unwrap_or(0.0);
    let fast_m = mlfrr(&fast.points(), 0.95).unwrap_or(f64::MAX);
    assert!(
        fast_m > slow_m * 1.5,
        "2x CPU should raise the MLFRR well above the 0.5x one: {fast_m} vs {slow_m}"
    );
    // At half speed, the rx interrupt work alone saturates the CPU below
    // 12,000 pkts/s — the paper's "would probably livelock somewhat below
    // the maximum Ethernet packet rate", realized: the slow machine may be
    // Degrading or fully Livelocked, never a plateau.
    assert_ne!(
        classify(&slow.points(), 0.10, 0.80),
        LivelockVerdict::StablePlateau
    );
    // The fast CPU may not even saturate at Ethernet rates — also fine.
    assert_ne!(
        classify(&fast.points(), 0.10, 0.80),
        LivelockVerdict::Livelock
    );

    // The screend livelock persists on the slow machine and the polled
    // kernel still fixes it there.
    let mut slow_screend = KernelConfig::builder().screend(Default::default()).build();
    slow_screend.cost = CostModel::scaled(0.5);
    assert_eq!(
        classify(&sweep_of(slow_screend, 2_000).points(), 0.10, 0.80),
        LivelockVerdict::Livelock
    );
    let mut slow_polled = KernelConfig::builder().polled(Quota::Limited(10)).build();
    slow_polled.cost = CostModel::scaled(0.5);
    assert_eq!(
        classify(&sweep_of(slow_polled, 2_000).points(), 0.10, 0.80),
        LivelockVerdict::StablePlateau
    );
}

/// §3: the scheduling subsystem should avoid "bursty scheduling, which
/// increases jitter". Larger quotas serve packets in bigger batches; at a
/// loss-free load the per-packet latency spread (jitter) grows with the
/// quota.
#[test]
fn larger_quotas_increase_jitter() {
    let jitter_at = |q: Quota| {
        run_trial(&TrialSpec {
            rate_pps: 4_000.0,
            n_packets: 3_000,
            ..TrialSpec::new(KernelConfig::builder().polled(q).build())
        })
        .latency_jitter
        .raw()
    };
    let small = jitter_at(Quota::Limited(2));
    let large = jitter_at(Quota::Limited(64));
    assert!(
        large > small,
        "batchier service should jitter more: quota64 {large} vs quota2 {small}"
    );
}

/// RED on the output queue turns the no-quota configuration's abrupt
/// output-queue overflow into early drops, without changing the verdict
/// for well-quota'd configurations.
#[test]
fn red_output_queue_counts_early_drops() {
    let mut cfg = KernelConfig::builder().polled(Quota::Limited(100)).build();
    cfg.ifq_red = true;
    let r = run_trial(&TrialSpec {
        rate_pps: 12_000.0,
        n_packets: 3_000,
        ..TrialSpec::new(cfg)
    });
    assert!(
        r.delivered_pps > 3_000.0,
        "still a plateau: {}",
        r.delivered_pps
    );
    // RED drops are a subset of output-queue drops and both are counted.
    assert!(r.ifq_drops > 0, "RED early-drops under overload: {r:?}");
}
