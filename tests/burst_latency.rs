//! §4.3 "Receive latency under overload": interrupt-driven designs can
//! *increase* delivery latency. "If a burst of packets arrives too rapidly,
//! the system will do link-level processing of the entire burst before
//! doing any higher-layer processing of the first packet ... The latency to
//! deliver the first packet in a burst is increased almost by the time it
//! takes to receive the entire burst."
//!
//! The modified kernel processes each packet to completion, so the first
//! packet of a burst leaves after one packet's worth of work, not the whole
//! burst's.

use livelock_core::poller::Quota;
use livelock_kernel::config::KernelConfig;
use livelock_kernel::router::{Event, RouterKernel};
use livelock_kernel::stats::KernelStats;
use livelock_machine::cpu::Engine;
use livelock_net::gen::PacketFactory;
use livelock_net::packet::MIN_FRAME_LEN;
use livelock_net::phy::LinkSpeed;
use livelock_sim::{Cycles, Freq, Nanos};

const FREQ: Freq = Freq::mhz(100);

/// Sends one back-to-back wire-rate burst of `n` minimum frames and
/// returns the stats after everything drains.
fn run_burst(cfg: KernelConfig, n: usize) -> KernelStats {
    let ctx_switch = cfg.cost.ctx_switch;
    let (st, kernel) = RouterKernel::build(cfg);
    let mut e = Engine::new(st, kernel, ctx_switch);
    let gap = LinkSpeed::ETHERNET_10M.frame_cycles(MIN_FRAME_LEN, FREQ);
    let mut factory = PacketFactory::paper_testbed();
    for k in 0..n {
        let t = Cycles::new(1_000) + gap * k as u64;
        e.state_schedule(
            t,
            Event::RxArrive {
                iface: 0,
                pkt: Box::new(factory.next_packet()),
            },
        );
    }
    e.run_until(FREQ.cycles_from_millis(500));
    e.workload().stats().clone()
}

/// The headline §4.3 effect, quantified: the first packet of a 20-packet
/// burst leaves the unmodified kernel only after most of the burst has
/// been link-level processed; the modified kernel delivers it after one
/// packet's worth of work.
#[test]
fn burst_first_packet_latency() {
    const BURST: usize = 20;
    let burst_duration = Nanos::new(67_200 * BURST as u64);

    let unmod = run_burst(KernelConfig::builder().build(), BURST);
    let polled = run_burst(KernelConfig::builder().polled(Quota::Limited(5)).build(), BURST);
    assert_eq!(unmod.transmitted, BURST as u64);
    assert_eq!(polled.transmitted, BURST as u64);

    // The earliest delivery is the first packet's (FIFO forwarding).
    let first_unmod = unmod.latency.min();
    let first_polled = polled.latency.min();

    // Paper: increased "almost by the time it takes to receive the entire
    // burst". Give it a generous lower bound of half the burst time.
    assert!(
        first_unmod > Nanos::new(burst_duration.raw() / 2),
        "unmodified first-packet latency {first_unmod} vs burst {burst_duration}"
    );
    // The modified kernel's first packet needs only its own processing
    // (~250 us of work + 67 us serialization), far below the burst time.
    assert!(
        first_polled < Nanos::new(burst_duration.raw() / 2),
        "modified first-packet latency {first_polled}"
    );
    assert!(
        first_unmod.raw() > 2 * first_polled.raw(),
        "expected a clear gap: {first_unmod} vs {first_polled}"
    );
}

/// Jitter: the burst drains smoothly on both kernels, but the unmodified
/// kernel's per-packet latencies spread across the whole burst-delay range
/// (its jitter is comparable to its mean), while the trailing packets of
/// both systems queue behind the same CPU bottleneck.
#[test]
fn burst_latency_distribution_is_recorded() {
    let s = run_burst(KernelConfig::builder().build(), 20);
    assert_eq!(s.latency.count(), 20);
    assert!(s.latency.max() > s.latency.min());
    assert!(s.latency.jitter() > Nanos::ZERO);
    assert!(s.latency.quantile(1.0) >= s.latency.quantile(0.5));
}

/// A burst smaller than the receive ring loses nothing on either kernel —
/// "letting the receiving interface buffer bursts" (§5.4).
#[test]
fn ring_absorbs_bursts_without_loss() {
    for cfg in [
        KernelConfig::builder().build(),
        KernelConfig::builder().polled(Quota::Limited(5)).build(),
    ] {
        let s = run_burst(cfg, 30); // Ring holds 32.
        assert_eq!(s.transmitted, 30, "stats: {s:?}");
        assert_eq!(s.rx_ring_drops(), 0);
        assert_eq!(s.wasted_drops(), 0);
    }
}

/// A burst way beyond the ring capacity: the unmodified kernel loses some
/// packets *after* investing work (ipintrq), the modified kernel only at
/// the free interface drop point.
#[test]
fn oversized_burst_drop_location() {
    let unmod = run_burst(KernelConfig::builder().build(), 150);
    let polled = run_burst(KernelConfig::builder().polled(Quota::Limited(5)).build(), 150);
    assert!(unmod.ipintrq_drops() > 0, "unmodified wastes work: {unmod:?}");
    assert_eq!(polled.ipintrq_drops(), 0);
    assert_eq!(
        polled.ifq_drops(), 0,
        "modified drops only at the ring: {polled:?}"
    );
    // And the modified kernel delivers at least as many in total.
    assert!(polled.transmitted >= unmod.transmitted);
}
